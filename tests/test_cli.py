"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def win_dl(tmp_path):
    path = tmp_path / "win.dl"
    path.write_text(
        "win(X) :- move(X, Y), not win(Y).\n"
        "move(a, b).\nmove(b, c).\nmove(d, d).\n"
    )
    return str(path)


@pytest.fixture()
def win_alg(tmp_path):
    path = tmp_path / "win.alg"
    path.write_text("relations MOVE;\nWIN = pi1(MOVE - (pi1(MOVE) * WIN));\n")
    return str(path)


@pytest.fixture()
def move_facts(tmp_path):
    path = tmp_path / "facts.alg"
    path.write_text("MOVE = {[a, b], [b, c]};\n")
    return str(path)


class TestDatalogCommand:
    def test_valid_semantics(self, win_dl, capsys):
        assert main(["datalog", win_dl]) == 0
        out = capsys.readouterr().out
        assert "win:" in out
        assert "(b)" in out            # b wins on the chain
        assert "undefined: (d)" in out  # the self-loop draw

    def test_inflationary_semantics(self, win_dl, capsys):
        assert main(["datalog", win_dl, "--semantics", "inflationary"]) == 0
        out = capsys.readouterr().out
        assert "undefined" not in out

    def test_query_selection(self, win_dl, capsys):
        assert main(["datalog", win_dl, "--query", "win"]) == 0
        assert "win:" in capsys.readouterr().out

    def test_separate_facts_file(self, tmp_path, capsys):
        program = tmp_path / "p.dl"
        program.write_text("p(X) :- e(X).\n")
        facts = tmp_path / "f.dl"
        facts.write_text("e(a).\ne(b).\n")
        assert main(["datalog", str(program), "--facts", str(facts)]) == 0
        out = capsys.readouterr().out
        assert "(a)" in out and "(b)" in out

    def test_nonfact_in_facts_file_rejected(self, tmp_path, win_dl):
        facts = tmp_path / "bad.dl"
        facts.write_text("e(X) :- f(X).\n")
        with pytest.raises(SystemExit):
            main(["datalog", win_dl, "--facts", str(facts)])

    def test_run_is_an_alias_for_datalog(self, win_dl, capsys):
        assert main(["run", win_dl]) == 0
        out = capsys.readouterr().out
        assert "win:" in out and "(b)" in out


@pytest.fixture()
def tc_chain_dl(tmp_path):
    path = tmp_path / "tc.dl"
    facts = "".join(f"edge(n{i}, n{i + 1}).\n" for i in range(30))
    path.write_text(
        "tc(X, Y) :- edge(X, Y).\n"
        "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n" + facts
    )
    return str(path)


class TestOneShotBudgets:
    """``repro run`` / ``repro datalog`` under an EvaluationBudget."""

    def test_within_budget_runs_normally(self, tc_chain_dl, capsys):
        code = main(
            ["run", tc_chain_dl, "--semantics", "stratified",
             "--deadline-ms", "60000", "--max-steps", "1000000"]
        )
        assert code == 0
        assert "tc:" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flags, code_prefix",
        [
            (["--max-steps", "3"], "error budget-exceeded BudgetExceeded:"),
            (["--max-facts", "3"], "error budget-exceeded BudgetExceeded:"),
        ],
        ids=["max-steps", "max-facts"],
    )
    def test_budget_trip_is_a_wire_coded_error(
        self, tc_chain_dl, capsys, flags, code_prefix
    ):
        code = main(
            ["run", tc_chain_dl, "--semantics", "stratified", *flags]
        )
        captured = capsys.readouterr()
        # The governed failure surfaces as the protocol's error line on
        # stdout with exit code 1 — never as a traceback.
        assert code == 1
        assert captured.out.startswith(code_prefix)
        assert "Traceback" not in captured.out + captured.err

    def test_deadline_trip_on_divergent_program(self, tmp_path, capsys):
        program = tmp_path / "nat.dl"
        program.write_text("nat(Y) :- nat(X), Y = succ(X).\nnat(0).\n")
        code = main(
            ["datalog", str(program), "--semantics", "stratified",
             "--deadline-ms", "200",
             "--max-rounds", "1000000000", "--max-atoms", "1000000000"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.out.startswith("error ")
        assert (
            "deadline-exceeded" in captured.out
            or "budget-exceeded" in captured.out
        )
        assert "Traceback" not in captured.out + captured.err


class TestAlgebraCommand:
    def test_run(self, win_alg, move_facts, capsys):
        assert main(
            ["algebra", win_alg, "--facts", move_facts, "--dialect", "algebra="]
        ) == 0
        out = capsys.readouterr().out
        # Chain a → b → c: c is a sink, so b wins and a loses.
        assert "WIN = {b}" in out
        assert "total" in out

    def test_undefined_reported(self, tmp_path, win_alg, capsys):
        facts = tmp_path / "cyclic.alg"
        facts.write_text("MOVE = {[a, a]};\n")
        assert main(
            ["algebra", win_alg, "--facts", str(facts), "--dialect", "algebra="]
        ) == 0
        out = capsys.readouterr().out
        assert "undefined members: a" in out
        assert "undefined memberships" in out


class TestTranslateCommand:
    def test_to_datalog(self, win_alg, capsys):
        assert main(
            ["translate", win_alg, "--to", "datalog", "--dialect", "algebra="]
        ) == 0
        out = capsys.readouterr().out
        assert "s_WIN" in out
        assert ":-" in out

    def test_to_algebra(self, win_dl, capsys):
        assert main(["translate", win_dl, "--to", "algebra"]) == 0
        out = capsys.readouterr().out
        assert "relations move;" in out
        assert "win =" in out


class TestCheckCommand:
    def test_nonstratified_reported(self, win_dl, capsys):
        assert main(["check", win_dl]) == 0
        out = capsys.readouterr().out
        assert "stratified: no" in out
        assert "all rules safe" in out

    def test_stratified_strata_printed(self, tmp_path, capsys):
        program = tmp_path / "strat.dl"
        program.write_text("p(X) :- e(X).\nq(X) :- e(X), not p(X).\n")
        assert main(["check", str(program)]) == 0
        out = capsys.readouterr().out
        assert "stratified: yes (2 strata)" in out

    def test_unsafe_rule_fails(self, tmp_path, capsys):
        program = tmp_path / "unsafe.dl"
        program.write_text("q(X) :- not p(X).\n")
        assert main(["check", str(program)]) == 1
        assert "UNSAFE" in capsys.readouterr().out


class TestServeCommand:
    def _serve(self, monkeypatch, capsys, script):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve"]) == 0
        return capsys.readouterr().out.splitlines()

    def test_register_query_update_stats(self, monkeypatch, capsys, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
            "edge(a, b).\nedge(b, c).\n"
        )
        out = self._serve(
            monkeypatch,
            capsys,
            f"register tc stratified {program}\n"
            "query tc tc\n"
            "+tc edge(c, d)\n"
            "query tc tc\n"
            "-tc edge(a, b)\n"
            "query tc tc\n"
            "stats tc\n"
            "quit\n",
        )
        assert out[0].startswith("ok {")
        assert "row tc(a, c)" in out
        assert "row tc(a, d)" in out          # appears after the insert
        assert "row tc(b, d)" in out          # survives the deletion
        stats_line = next(line for line in out if '"counters"' in line)
        import json

        payload = json.loads(stats_line[len("ok ") :])
        assert payload["mode"] == "incremental"
        assert payload["counters"]["update_batches"] == 2
        assert payload["counters"]["recompute_fallbacks"] == 0
        assert out[-1] == "ok bye"

    def test_fallback_to_recompute_path(self, monkeypatch, capsys, win_dl):
        out = self._serve(
            monkeypatch,
            capsys,
            f"register win valid {win_dl}\n"
            "query win win\n"
            "-win move(a, b)\n"
            "query win win\n"
            "stats win\n",
        )
        assert "undef win(d)" in out
        import json

        payload = json.loads(out[-1][len("ok ") :])
        assert payload["mode"] == "recompute"
        assert payload["counters"]["recompute_batches"] == 1
        assert payload["counters"]["recompute_fallbacks"] == 0

    def test_bad_requests_keep_serving(self, monkeypatch, capsys):
        out = self._serve(
            monkeypatch,
            capsys,
            "query missing p\n"
            "register ok stratified p(X) :- e(X). e(a).\n"
            "query ok p\n",
        )
        assert out[0].startswith("error KeyError")
        assert out[-1] == "ok 1 rows"

    def test_serve_with_resource_limit_flags(self, monkeypatch, capsys):
        import io
        import sys as _sys

        script = (
            "register tc stratified tc(X,Y) :- e(X,Y). e(a,b). e(b,c).\n"
            "query tc tc\n"
            "query tc " + "x" * 200 + "\n"
            "query tc tc\n"
            "quit\n"
        )
        monkeypatch.setattr(_sys, "stdin", io.StringIO(script))
        assert (
            main(
                [
                    "serve",
                    "--deadline-ms",
                    "5000",
                    "--max-request-bytes",
                    "128",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("ok {")
        assert "ok 2 rows" in out
        oversized = [line for line in out if "request-too-large" in line]
        assert oversized and oversized[0].startswith(
            "error request-too-large RequestTooLarge:"
        )
        assert out[-1] == "ok bye"

    def test_serve_deadline_rejects_divergent_updates(self, monkeypatch, capsys):
        import io
        import sys as _sys
        import time

        script = (
            "register nat stratified nat(Y) :- nat(X), Y = succ(X). nat(0).\n"
        )
        monkeypatch.setattr(_sys, "stdin", io.StringIO(script))
        start = time.monotonic()
        assert main(["serve", "--deadline-ms", "200", "--max-rounds", "1000000000", "--max-atoms", "1000000000"]) == 0
        elapsed = time.monotonic() - start
        out = capsys.readouterr().out.splitlines()
        # Registration materializes the view; grounding the divergent
        # program must hit the deadline, not loop forever...
        assert any(
            line.startswith("error deadline-exceeded DeadlineExceeded:")
            or line.startswith("error budget-exceeded")
            for line in out
        )
        # ...and within 2x the configured deadline (plus process slack).
        assert elapsed < 5.0

    def test_metrics_snapshot_flag(self, monkeypatch, capsys):
        import io
        import json

        script = (
            "register tc stratified tc(X,Y) :- e(X,Y). e(a,b).\n"
            "query tc tc\n"
            "quit\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--metrics-snapshot"]) == 0
        out = capsys.readouterr().out.splitlines()
        # After "ok bye" the service dumps one JSON metrics document.
        snapshot = json.loads(out[-1])
        assert snapshot["counters"]["requests_total"] == 2
        assert snapshot["gauges"]["views_registered"] == 1
        assert "tc" in snapshot["gauges"]["time_in_degraded"]

    def test_unix_socket_serving(self, tmp_path):
        import socket
        import threading

        path = str(tmp_path / "cli.sock")
        thread = threading.Thread(
            target=main,
            args=(["serve", "--socket", path, "--max-connections", "1"],),
        )
        thread.start()
        try:
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            for _ in range(200):
                try:
                    client.connect(path)
                    break
                except (FileNotFoundError, ConnectionRefusedError):
                    import time

                    time.sleep(0.01)
            with client:
                client.sendall(
                    b"register tc stratified tc(X,Y) :- e(X,Y). e(a,b).\n"
                    b"query tc tc\nquit\n"
                )
                reader = client.makefile("r")
                replies = [reader.readline().strip() for _ in range(4)]
        finally:
            thread.join(timeout=5)
        assert not thread.is_alive()
        assert replies[0].startswith("ok {")
        assert replies[1] == "row tc(a, b)"
        assert replies[2] == "ok 1 rows"
        assert replies[3] == "ok bye"
