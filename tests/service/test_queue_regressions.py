"""Regressions for the write-path hang and error-propagation bugs.

Two bugs, both in the group-commit queue (:mod:`repro.service.dbsp.queue`):

* **S1 — the parked-writer hang.**  ``UpdateQueue.submit`` blocked
  forever while the queue was full.  Progress normally holds because
  every queued ticket has a live owner heading for the view lock — but
  a leader that *dies* (an injected fault, a killed thread) with the
  queue full leaves every parked writer waiting on a condition nobody
  will ever signal.  Both queue waits are now bounded by the request
  deadline and raise the wire-coded ``update-timeout``; a timed-out
  ticket is withdrawn so it can never apply later.

* **S2 — the shared-exception race.**  A coalesced ticket that fails is
  awaited by several loser threads; re-raising the *same* exception
  instance from each mutates the shared ``__traceback__``
  concurrently.  Every waiter now gets a per-waiter copy chained to the
  shared original via ``__cause__``.
"""

import threading
import time

import pytest

from repro.relations import Atom
from repro.robustness import FaultInjector, FaultRule, InjectedFault, inject_faults
from repro.robustness.errors import ReproError, UpdateTimeout
from repro.service import QueryService, UpdateQueue
from repro.service.dbsp.queue import Ticket, _per_waiter_copy

a, b = Atom("a"), Atom("b")

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
"""

JOIN_TIMEOUT = 20.0


def settle(threads):
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"threads hung: {stuck}"


class TestSubmitDeadline:
    def test_submit_times_out_on_full_queue(self):
        queue = UpdateQueue(capacity=1)
        queue.submit([("edge", (a, b))], [])
        start = time.monotonic()
        with pytest.raises(UpdateTimeout):
            queue.submit([("edge", (b, a))], [], timeout=0.1)
        assert time.monotonic() - start < 5.0
        # Nothing was enqueued by the timed-out submit.
        assert queue.depth() == 1

    def test_submit_without_timeout_waits_for_space(self):
        queue = UpdateQueue(capacity=1)
        first = queue.submit([("edge", (a, b))], [])
        done = threading.Event()

        def writer():
            queue.submit([("edge", (b, a))], [])
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not done.wait(0.2)  # parked: queue is full
        assert queue.withdraw(first)
        settle([thread])
        assert done.is_set()

    def test_outcome_times_out_with_wire_code(self):
        ticket = Ticket([], [])
        with pytest.raises(UpdateTimeout) as info:
            ticket.outcome(0.05)
        assert info.value.code == "update-timeout"
        assert isinstance(info.value, TimeoutError)
        assert isinstance(info.value, ReproError)

    def test_withdraw_fails_once_drained(self):
        queue = UpdateQueue(capacity=4)
        ticket = queue.submit([], [])
        assert queue.drain(10) == [ticket]
        assert not queue.withdraw(ticket)


class TestParkedWriterHang:
    def test_parked_writers_settle_when_leader_is_dead(self):
        # The S1 scenario: a ticket whose owner died sits in a
        # capacity-1 queue, so it will never be drained.  Writers that
        # park behind it must settle with update-timeout at the request
        # deadline instead of hanging forever (pre-fix, this test
        # deadlocks until the join timeout trips).
        service = QueryService(
            coalesce=8, queue_capacity=1, deadline_ms=300
        )
        try:
            service.register("g", TC)
            view = service.views["g"]
            view.pending.submit([("edge", (Atom("orphan"), a))], [])
            failures = []

            def writer(i):
                try:
                    service.insert("g", "edge", Atom(f"w{i}"), a)
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)

            threads = [
                threading.Thread(target=writer, args=(i,), name=f"w{i}")
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            settle(threads)
            assert len(failures) == 4
            assert all(isinstance(exc, UpdateTimeout) for exc in failures)
            # No timed-out write was enqueued, let alone applied.
            assert view.pending.depth() == 1
            rows, _, _ = service.query_state("g", "edge")
            assert not any(str(row[0]).startswith("w") for row in rows)
        finally:
            service.close()

    def test_service_recovers_after_orphan_cleared(self):
        service = QueryService(
            coalesce=8, queue_capacity=1, deadline_ms=300
        )
        try:
            service.register("g", TC)
            view = service.views["g"]
            orphan = view.pending.submit([("edge", (Atom("orphan"), a))], [])
            with pytest.raises(UpdateTimeout):
                service.insert("g", "edge", b, a)
            assert view.pending.withdraw(orphan)
            service.insert("g", "edge", b, a)
            rows, _, _ = service.query_state("g", "edge")
            assert (b, a) in rows
        finally:
            service.close()

    def test_chaos_lock_faults_leave_consistent_state(self):
        # Writers whose view-lock acquisition is killed by the
        # service.lock fault must withdraw their own still-queued ticket
        # (fact absent) or defer to the leader that raced them to it
        # (fact present) — and clean writers always land.  Either way
        # everything settles and the final extension exactly matches the
        # acks.
        service = QueryService(coalesce=8, queue_capacity=4, deadline_ms=2000)
        try:
            service.register("g", TC)
            results = {}

            def chaos_writer(i):
                injector = FaultInjector(
                    [FaultRule("service.lock", at_hit=1, times=1)]
                )
                with inject_faults(injector):
                    try:
                        service.insert("g", "edge", Atom(f"c{i}"), a)
                        results[f"c{i}"] = "ok"
                    except InjectedFault:
                        results[f"c{i}"] = "faulted"

            def clean_writer(i):
                service.insert("g", "edge", Atom(f"k{i}"), a)
                results[f"k{i}"] = "ok"

            threads = [
                threading.Thread(target=chaos_writer, args=(i,), name=f"c{i}")
                for i in range(3)
            ] + [
                threading.Thread(target=clean_writer, args=(i,), name=f"k{i}")
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            settle(threads)
            assert view_is_consistent(service, results)
        finally:
            service.close()


def view_is_consistent(service, results):
    rows, _, _ = service.query_state("g", "edge")
    landed = {str(row[0]) for row in rows}
    for name, outcome in results.items():
        if outcome == "ok":
            assert name in landed, f"acked write {name} lost"
        else:
            assert name not in landed, f"failed write {name} applied"
    return True


class TestPerWaiterErrorCopies:
    def test_each_loser_gets_a_distinct_instance(self):
        ticket = Ticket([("edge", (a, b))], [])
        shared = RuntimeError("batch poisoned")
        ticket.fail(shared)
        received = []
        lock = threading.Lock()

        def loser():
            try:
                ticket.outcome(5.0)
            except RuntimeError as exc:
                with lock:
                    received.append(exc)

        threads = [threading.Thread(target=loser) for _ in range(6)]
        for thread in threads:
            thread.start()
        settle(threads)
        assert len(received) == 6
        # Distinct instances, none of them the shared original...
        assert len({id(exc) for exc in received}) == 6
        assert all(exc is not shared for exc in received)
        # ...with identical payloads, all chained to the original.
        assert all(exc.args == shared.args for exc in received)
        assert all(exc.__cause__ is shared for exc in received)
        assert all(exc.__suppress_context__ for exc in received)

    def test_copy_preserves_subtype_and_progress(self):
        original = UpdateTimeout("deadline", progress=None)
        clone = _per_waiter_copy(original)
        assert clone is not original
        assert isinstance(clone, UpdateTimeout)
        assert clone.code == "update-timeout"
        assert clone.__cause__ is original
        assert clone.__traceback__ is None

    def test_raising_copies_does_not_mutate_original_traceback(self):
        shared = ValueError("shared")
        try:
            raise shared
        except ValueError:
            pass
        original_tb = shared.__traceback__
        clone = _per_waiter_copy(shared)
        try:
            raise clone
        except ValueError:
            pass
        assert shared.__traceback__ is original_tb
