"""Coalescing correctness: a burst equals the same batches one at a time.

The group-commit queue (PR 8) lets one leader absorb an N-batch burst
into a single circuit pass and a single snapshot publish.  That is only
an optimisation if it is *invisible*: the published snapshot after a
burst must be **byte-identical** (same ``fingerprint``) to the snapshot
after applying the same batches sequentially.  This suite checks
exactly that, across every maintenance discipline a view can run under
(dbsp, legacy, forced recompute, and the three-valued recompute
semantics), from concurrent writers through the real group-commit
path, and under injected ``service.lock`` and budget faults — a failed
or refused burst must leave the queue empty and the view's state
exactly where it was.
"""

import random
import threading

import pytest

from repro.relations import Atom
from repro.robustness import (
    EvaluationBudget,
    FaultInjector,
    FaultRule,
    InjectedFault,
    inject_faults,
)
from repro.robustness.errors import DeadlineExceeded
from repro.service import QueryService

TC = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
)
WIN = "win(X) :- move(X, Y), not win(Y).\n"

#: (config id, program, semantics, incremental flag, maintenance mode)
#: — the five registration disciplines crossed with both engines where
#: the incremental fast path applies.
CONFIGS = [
    ("stratified-dbsp", TC, "stratified", True, "dbsp"),
    ("stratified-legacy", TC, "stratified", True, "legacy"),
    ("stratified-recompute", TC, "stratified", False, "dbsp"),
    ("inflationary", WIN, "inflationary", True, "dbsp"),
    ("wellfounded", WIN, "wellfounded", True, "dbsp"),
    ("valid", WIN, "valid", True, "dbsp"),
]

NODES = [Atom(f"n{i}") for i in range(5)]
BATCHES = 10


def _update_predicate(program):
    return "edge" if program is TC else "move"


def _query_predicate(program):
    return "tc" if program is TC else "win"


def _random_batches(rng, predicate, count=BATCHES):
    """Churn-heavy batches: rows repeat across batches so a burst sees
    genuine insert/delete cancellation, plus phantom deletes."""
    pool = [(x, y) for x in NODES for y in NODES]
    hot = rng.sample(pool, 6)
    batches = []
    for _ in range(count):
        inserts, deletes = [], []
        for _ in range(rng.randint(1, 3)):
            row = rng.choice(hot) if rng.random() < 0.7 else rng.choice(pool)
            if rng.random() < 0.4:
                deletes.append((predicate, row))
            else:
                inserts.append((predicate, row))
        batches.append((inserts, deletes))
    return batches


def _fresh_service(config, rng, **kwargs):
    _, program, semantics, incremental, maintenance = config
    service = QueryService(maintenance=maintenance, **kwargs)
    service.register("v", program, semantics=semantics, incremental=incremental)
    predicate = _update_predicate(program)
    seed_rows = [
        (predicate, (rng.choice(NODES), rng.choice(NODES))) for _ in range(4)
    ]
    service.update("v", inserts=seed_rows)
    return service


def _fingerprint(service, program):
    # Recompute disciplines publish lazily on the next read, so force
    # the publish before fingerprinting.
    service.query_state("v", _query_predicate(program))
    return service.view("v").read_snapshot().fingerprint


@pytest.mark.parametrize(
    "config", CONFIGS, ids=[config[0] for config in CONFIGS]
)
@pytest.mark.parametrize("seed", range(4))
def test_burst_fingerprint_matches_sequential(config, seed):
    """apply_stream(batches) and N× apply publish byte-identical models."""
    _, program, _, _, _ = config
    predicate = _update_predicate(program)
    burst = _fresh_service(config, random.Random(f"coalesce-{seed}"))
    sequential = _fresh_service(config, random.Random(f"coalesce-{seed}"))
    try:
        batches = _random_batches(
            random.Random(f"coalesce-batches-{seed}"), predicate
        )
        view = burst.view("v")
        swaps_before = view.metrics.counters["snapshot_swaps"]
        summary = view.apply_stream(batches)
        assert summary["batches"] == len(batches)
        if summary["mode"] == "incremental":
            # The whole burst was one publish; under dbsp it was also a
            # single circuit pass (the coalescing counters are the
            # circuit's — the legacy engine replays per batch).
            assert (
                view.metrics.counters["snapshot_swaps"] == swaps_before + 1
            )
            coalesced = view.metrics.counters["delta_batches_coalesced"]
            if config[4] == "dbsp":
                assert coalesced >= len(batches) - 1
            else:
                assert coalesced == 0
                assert view.metrics.counters["circuit_steps"] == 0
        for inserts, deletes in batches:
            sequential.update("v", inserts=inserts, deletes=deletes)
        assert _fingerprint(burst, program) == _fingerprint(
            sequential, program
        ), f"burst and sequential fingerprints diverged under {config[0]}"
    finally:
        burst.close()
        sequential.close()


@pytest.mark.parametrize("maintenance", ["dbsp", "legacy"])
def test_concurrent_writers_group_commit_matches_sequential(maintenance):
    """Racing writers through the real queue land on the sequential model.

    Insert-only disjoint batches commute, so any drain order must
    produce the same published fingerprint as a single-threaded
    service applying the same batches.
    """
    config = ("x", TC, "stratified", True, maintenance)
    rng = random.Random("group-commit")
    service = _fresh_service(config, rng, coalesce=8)
    sequential = _fresh_service(config, random.Random("group-commit"))
    try:
        per_writer = [
            [
                [("edge", (Atom(f"w{w}"), Atom(f"w{w}x{i}x{j}")))
                 for j in range(2)]
                for i in range(5)
            ]
            for w in range(6)
        ]
        failures = []

        def writer(batches):
            try:
                for inserts in batches:
                    summary = service.update("v", inserts=inserts)
                    assert summary["mode"] == "incremental"
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(batches,))
            for batches in per_writer
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        assert service.view("v").pending.depth() == 0
        assert (
            service.view("v").metrics.counters["update_batches"]
            == 1 + sum(len(batches) for batches in per_writer)
        )
        for batches in per_writer:
            for inserts in batches:
                sequential.update("v", inserts=inserts)
        assert _fingerprint(service, TC) == _fingerprint(sequential, TC)
    finally:
        service.close()
        sequential.close()


@pytest.mark.parametrize("maintenance", ["dbsp", "legacy"])
def test_lock_fault_withdraws_ticket_and_leaves_state_clean(maintenance):
    """A service.lock fault mid-update must not strand an unacked batch."""
    config = ("x", TC, "stratified", True, maintenance)
    rng = random.Random("lock-fault")
    service = _fresh_service(config, rng, coalesce=8)
    reference = _fresh_service(config, random.Random("lock-fault"))
    try:
        before = _fingerprint(service, TC)
        injector = FaultInjector([FaultRule("service.lock", at_hit=1)])
        with inject_faults(injector):
            with pytest.raises(InjectedFault):
                service.update("v", inserts=[("edge", (NODES[0], NODES[1]))])
        # The refused batch is fully withdrawn: empty queue, untouched
        # snapshot, and no future leader can replay it.
        assert service.view("v").pending.depth() == 0
        assert _fingerprint(service, TC) == before
        summary = service.update(
            "v", inserts=[("edge", (NODES[1], NODES[2]))]
        )
        assert summary["mode"] == "incremental"
        reference.update("v", inserts=[("edge", (NODES[1], NODES[2]))])
        assert _fingerprint(service, TC) == _fingerprint(reference, TC)
    finally:
        service.close()
        reference.close()


@pytest.mark.parametrize(
    "config",
    [CONFIGS[0], CONFIGS[1]],
    ids=[CONFIGS[0][0], CONFIGS[1][0]],
)
def test_budget_fault_mid_burst_reinitializes_cleanly(config):
    """A budget trip inside a burst rolls the whole burst back."""
    rng = random.Random("budget-fault")
    service = _fresh_service(config, rng)
    try:
        view = service.view("v")
        before = _fingerprint(service, config[1])
        original_factory = view.budget_factory
        draws = iter([EvaluationBudget(deadline_seconds=-1.0)])
        # Poison only the first draw: the rollback's reinitialize draws
        # a fresh budget from the same factory and must succeed.
        view.budget_factory = lambda: next(draws, EvaluationBudget())
        batches = _random_batches(
            random.Random("budget-burst"), _update_predicate(config[1])
        )
        with pytest.raises(DeadlineExceeded):
            view.apply_stream(batches)
        view.budget_factory = original_factory
        # The burst rolled back and the view reinitialized: same
        # fingerprint as before, still healthy, and the same burst
        # replays successfully afterwards.
        assert not view.stale
        assert _fingerprint(service, config[1]) == before
        replay = view.apply_stream(batches)
        assert replay["batches"] == len(batches)
        reference = _fresh_service(
            config, random.Random("budget-fault")
        )
        try:
            for inserts, deletes in batches:
                reference.update("v", inserts=inserts, deletes=deletes)
            assert _fingerprint(service, config[1]) == _fingerprint(
                reference, config[1]
            )
        finally:
            reference.close()
    finally:
        service.close()


def test_injected_apply_fault_inside_drain_fails_only_its_batch():
    """With coalescing active, a poisoned burst degrades to per-batch
    retry: the injected fault fails exactly one writer, the others'
    batches still commit, and the final model matches a reference that
    never saw the poisoned batch."""
    config = ("x", TC, "stratified", True, "dbsp")
    service = _fresh_service(config, random.Random("drain-fault"), coalesce=8)
    reference = _fresh_service(config, random.Random("drain-fault"))
    try:
        inserts = [("edge", (NODES[2], NODES[3]))]
        injector = FaultInjector(
            [FaultRule("incremental.apply", at_hit=1, times=1)]
        )
        with inject_faults(injector):
            with pytest.raises(InjectedFault):
                service.update("v", inserts=inserts)
        assert service.view("v").pending.depth() == 0
        # The view answered the fault with a rebuild; later updates and
        # the replayed batch both land, matching the reference.
        service.update("v", inserts=inserts)
        reference.update("v", inserts=inserts)
        assert _fingerprint(service, TC) == _fingerprint(reference, TC)
    finally:
        service.close()
        reference.close()
