"""Torn-tail property tests (the crash-mid-write contract).

A crash can stop the final WAL write at any byte.  For **every**
truncation offset inside the final record — and for corrupted bytes,
not just missing ones — recovery must come back with exactly the state
of the clean prefix: no exception, no phantom fact, no lost acked
record before the tear.
"""

import pytest

from repro.service import QueryService
from repro.service.durability import scan_segment
from repro.service.durability.wal import _HEADER, segment_files

RULES = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."
EDGES = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]


def _durable_service(data_dir):
    return QueryService(
        data_dir=str(data_dir), fsync="off", checkpoint_every=10_000
    )


def _build_log(data_dir):
    """A service history whose WAL is: register + one insert per edge.

    Returns the per-prefix oracle: ``oracle[k]`` is the set of ``tc``
    rows after the register and the first ``k`` inserts.
    """
    service = _durable_service(data_dir)
    oracle = {}
    service.register("g", RULES)
    oracle[0] = set(service.query("g", "tc"))
    for k, (x, y) in enumerate(EDGES, start=1):
        service.insert("g", "edge", x, y)
        oracle[k] = set(service.query("g", "tc"))
    # Crash: drop the durability plane with no final checkpoint.  The
    # WAL handle is unbuffered, so this adds no writes — exactly what
    # the file system holds after a kill -9.
    service.durability.close(final_checkpoint=False)
    return oracle


def _frame_offsets(segment):
    """Byte offset of each record's end, in order (0 prepended)."""
    data = segment.read_bytes()
    offsets = [0]
    cursor = 0
    while cursor < len(data):
        length, _crc = _HEADER.unpack_from(data, cursor)
        cursor += _HEADER.size + length
        offsets.append(cursor)
    return offsets


def _recovered_rows(data_dir):
    service = _durable_service(data_dir)
    try:
        names = service.name_table()
        if "g" not in names:
            return None, service.last_recovery
        return set(service.query("g", "tc")), service.last_recovery
    finally:
        service.close()
        # Recovery itself must not be journaled as new operations, and
        # close() checkpoints — wipe nothing, the next boot re-reads.


def test_truncation_at_every_byte_of_the_final_record(tmp_path):
    """Cut the log after byte N of the last record, for every N."""
    oracle = _build_log(tmp_path)
    (segment,) = segment_files(tmp_path)
    whole = segment.read_bytes()
    offsets = _frame_offsets(segment)
    last_start, last_end = offsets[-2], offsets[-1]
    assert last_end == len(whole)
    for cut in range(last_start, last_end + 1):
        for path in segment_files(tmp_path):
            path.unlink()
        for checkpoint in tmp_path.glob("checkpoint-*.json"):
            checkpoint.unlink()
        segment.write_bytes(whole[:cut])
        rows, report = _recovered_rows(tmp_path)
        # A whole final record replays it; any partial byte of it must
        # recover the exact prefix state — never an error, never a
        # half-applied fact.
        expected_k = len(EDGES) if cut == last_end else len(EDGES) - 1
        assert rows == oracle[expected_k], (
            f"cut at byte {cut} (record bytes {last_start}..{last_end})"
        )
        if cut not in (last_start, last_end):
            assert report.torn_records_dropped >= 1


def test_truncation_at_every_record_boundary(tmp_path):
    """Cutting cleanly between records recovers that exact prefix."""
    oracle = _build_log(tmp_path)
    (segment,) = segment_files(tmp_path)
    whole = segment.read_bytes()
    offsets = _frame_offsets(segment)
    # offsets[i] is the end of record i; record 1 is the register.
    for i in range(1, len(offsets)):
        for checkpoint in tmp_path.glob("checkpoint-*.json"):
            checkpoint.unlink()
        segment.write_bytes(whole[: offsets[i]])
        rows, _report = _recovered_rows(tmp_path)
        assert rows == oracle[i - 1], f"prefix of {i} records"
    # Cutting before the register leaves no view at all — still clean.
    segment.write_bytes(b"")
    for checkpoint in tmp_path.glob("checkpoint-*.json"):
        checkpoint.unlink()
    rows, _report = _recovered_rows(tmp_path)
    assert rows is None


@pytest.mark.parametrize("byte_offset_from_end", [1, 3, 7])
def test_corrupted_tail_bytes_recover_the_prefix(
    tmp_path, byte_offset_from_end
):
    """Flipped (not missing) bytes in the final record are a torn tail."""
    oracle = _build_log(tmp_path)
    (segment,) = segment_files(tmp_path)
    whole = bytearray(segment.read_bytes())
    whole[-byte_offset_from_end] ^= 0x5A
    segment.write_bytes(bytes(whole))
    rows, report = _recovered_rows(tmp_path)
    assert rows == oracle[len(EDGES) - 1]
    assert report.torn_records_dropped >= 1


def test_scan_never_raises_on_arbitrary_tails(tmp_path):
    """scan_segment is total: any byte soup yields a clean prefix."""
    _build_log(tmp_path)
    (segment,) = segment_files(tmp_path)
    whole = segment.read_bytes()
    for cut in range(0, len(whole) + 1, 7):
        segment.write_bytes(whole[:cut] + b"\xde\xad\xbe\xef")
        records, clean_end, torn = scan_segment(segment)
        assert clean_end <= cut + 4
        assert torn >= 1
        assert all(r.lsn >= 1 for r in records)
