"""The LRU result cache and the metrics layer."""

import pytest

from repro.service import LRUCache, ViewMetrics


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get(("v", "p")) is None
        cache.put(("v", "p"), 1)
        assert cache.get(("v", "p")) == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1, "capacity": 4}

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put(("a", 1), "x")
        cache.put(("b", 1), "y")
        cache.get(("a", 1))          # refresh a: b is now least-recent
        cache.put(("c", 1), "z")
        assert cache.get(("b", 1)) is None
        assert cache.get(("a", 1)) == "x"
        assert cache.get(("c", 1)) == "z"

    def test_scope_invalidation(self):
        cache = LRUCache(capacity=8)
        cache.put(("tc", "p"), 1)
        cache.put(("tc", "q"), 2)
        cache.put(("win", "p"), 3)
        assert cache.invalidate("tc") == 2
        assert cache.get(("tc", "p")) is None
        assert cache.get(("win", "p")) == 3
        assert cache.invalidate("tc") == 0

    def test_eviction_cleans_scope_tracking(self):
        cache = LRUCache(capacity=1)
        cache.put(("a", 1), "x")
        cache.put(("b", 1), "y")  # evicts ("a", 1)
        assert cache.invalidate("a") == 0
        assert cache.get(("b", 1)) == "y"

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_clear(self):
        cache = LRUCache(capacity=4)
        cache.put(("a", 1), "x")
        cache.clear()
        assert len(cache) == 0
        assert cache.get(("a", 1)) is None


class TestViewMetrics:
    def test_counters_start_at_zero_and_bump(self):
        metrics = ViewMetrics()
        assert metrics.counters["cache_hits"] == 0
        metrics.bump("cache_hits")
        metrics.bump("delta_plus_total", 7)
        metrics.bump("custom_counter", 2)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["cache_hits"] == 1
        assert snapshot["counters"]["delta_plus_total"] == 7
        assert snapshot["counters"]["custom_counter"] == 2

    def test_phase_timer_accumulates(self):
        metrics = ViewMetrics()
        with metrics.phase("maintain"):
            pass
        with metrics.phase("maintain"):
            pass
        assert metrics.phase_seconds["maintain"] >= 0.0
        assert set(metrics.snapshot()["phase_seconds"]) == {"maintain"}

    def test_phase_survives_exceptions(self):
        metrics = ViewMetrics()
        with pytest.raises(RuntimeError):
            with metrics.phase("boom"):
                raise RuntimeError("x")
        assert "boom" in metrics.phase_seconds
