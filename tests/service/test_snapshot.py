"""Unit tests for the immutable model snapshots (the RCU read path)."""

from repro.relations import Atom
from repro.service import ModelSnapshot
from repro.service.snapshot import MAX_DELTA_DEPTH, _Cell

a, b, c, d = Atom("a"), Atom("b"), Atom("c"), Atom("d")


def _snap(**tables):
    return ModelSnapshot.full({name: rows for name, rows in tables.items()})


class TestConstruction:
    def test_full_snapshot_serves_both_truth_statuses(self):
        snapshot = ModelSnapshot.full(
            {"win": {(b,)}}, {"win": {(d,)}}, generation=3
        )
        assert snapshot.rows("win") == {(b,)}
        assert snapshot.undefined_rows("win") == {(d,)}
        assert snapshot.generation == 3
        assert not snapshot.stale
        assert snapshot.predicates() == {"win"}

    def test_unknown_predicates_answer_empty(self):
        snapshot = _snap(p={(a,)})
        assert snapshot.rows("q") == frozenset()
        assert snapshot.undefined_rows("q") == frozenset()

    def test_empty_undefined_tables_are_dropped(self):
        snapshot = ModelSnapshot.full({"p": {(a,)}}, {"p": frozenset()})
        assert snapshot.predicates() == {"p"}


class TestDeltaMaintenance:
    def test_apply_delta_adds_and_removes(self):
        base = _snap(tc={(a, b), (b, c)})
        successor = base.apply_delta(
            {"tc": {(a, c)}}, {"tc": {(b, c)}}, generation=2
        )
        assert successor.rows("tc") == {(a, b), (a, c)}
        assert successor.generation == 2
        # The parent is immutable: unchanged by its successor.
        assert base.rows("tc") == {(a, b), (b, c)}

    def test_untouched_predicates_share_cells(self):
        base = _snap(p={(a,)}, q={(b,)})
        successor = base.apply_delta({"p": {(c,)}}, {}, generation=2)
        assert successor._true["q"] is base._true["q"]
        assert successor._true["p"] is not base._true["p"]

    def test_delta_for_new_predicate(self):
        base = _snap(p={(a,)})
        successor = base.apply_delta({"fresh": {(d,)}}, {}, generation=2)
        assert successor.rows("fresh") == {(d,)}

    def test_empty_net_delta_is_a_noop_cellwise(self):
        base = _snap(p={(a,)})
        successor = base.apply_delta(
            {"p": frozenset()}, {"p": frozenset()}, generation=2
        )
        assert successor._true["p"] is base._true["p"]

    def test_long_chains_compact_at_the_depth_cap(self):
        snapshot = _snap(p=frozenset())
        for i in range(3 * MAX_DELTA_DEPTH):
            snapshot = snapshot.apply_delta(
                {"p": {(Atom(f"n{i}"),)}}, {}, generation=i + 2
            )
            assert snapshot._true["p"].depth <= MAX_DELTA_DEPTH
        assert snapshot.rows("p") == {
            (Atom(f"n{i}"),) for i in range(3 * MAX_DELTA_DEPTH)
        }

    def test_materialization_is_memoized(self):
        base = _snap(p={(a,)})
        successor = base.apply_delta({"p": {(b,)}}, {}, generation=2)
        first = successor.rows("p")
        assert successor.rows("p") is first  # the frozen swap happened
        assert successor._true["p"].depth == 0


class TestStaleness:
    def test_as_stale_shares_cells_and_flags(self):
        base = ModelSnapshot.full({"p": {(a,)}}, {"p": {(b,)}}, generation=4)
        stale = base.as_stale(generation=5)
        assert stale.stale and not base.stale
        assert stale.generation == 5
        assert stale._true["p"] is base._true["p"]
        assert stale.rows("p") == base.rows("p")
        assert stale.undefined_rows("p") == {(b,)}


class TestFingerprint:
    def test_identical_models_share_a_fingerprint(self):
        one = _snap(p={(a,), (b,)})
        other = _snap(p={(b,), (a,)})
        assert one.fingerprint == other.fingerprint

    def test_fingerprint_is_delta_path_independent(self):
        direct = _snap(tc={(a, b), (a, c)})
        routed = _snap(tc={(a, b), (b, c)}).apply_delta(
            {"tc": {(a, c)}}, {"tc": {(b, c)}}, generation=2
        )
        assert direct.fingerprint == routed.fingerprint

    def test_fingerprint_covers_undefined_rows(self):
        total = ModelSnapshot.full({"win": {(b,)}})
        partial = ModelSnapshot.full({"win": {(b,)}}, {"win": {(d,)}})
        assert total.fingerprint != partial.fingerprint

    def test_fingerprint_is_memoized(self):
        snapshot = _snap(p={(a,)})
        assert snapshot.fingerprint is snapshot.fingerprint


class TestCellUnit:
    def test_frozen_cell_roundtrip(self):
        cell = _Cell.frozen([(a,), (b,)])
        assert cell.rows() == {(a,), (b,)}
        assert cell.depth == 0

    def test_delta_cell_resolves_through_parents(self):
        root = _Cell.frozen([(a,), (b,)])
        middle = _Cell.delta(root, frozenset([(c,)]), frozenset([(a,)]), 1)
        top = _Cell.delta(middle, frozenset([(d,)]), frozenset(), 2)
        assert top.depth == 2
        assert top.rows() == {(b,), (c,), (d,)}
        # Reading the top memoizes it to a frozen cell.
        assert top.depth == 0
