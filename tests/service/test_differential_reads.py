"""Differential fuzzing of the wait-free read path against an oracle.

Each schedule drives one :class:`QueryService` through a seeded-random
sequence of ``register`` / ``update`` / ``query`` / ``unregister``
operations across four views, and checks **every** answer the snapshot
path produces — certainly-true rows *and* undefined rows, via
``query_state`` so both come from one linearization point — against a
from-scratch evaluation of the view's program over its current
database (:func:`repro.datalog.engine.run`, the same oracle the
concurrency stress suite trusts).

Six service configurations are fuzzed, covering every maintenance
discipline a view can run under:

* ``stratified`` on the incremental fast path under **both** engines —
  the delta-stream circuit (``maintenance="dbsp"``, the default) and
  the counting/DRed baseline (``maintenance="legacy"``),
* ``stratified`` forced onto the recompute path (snapshot republished
  from full models),
* ``inflationary``, ``wellfounded``, and ``valid`` — the recompute
  disciplines, the last two with non-stratified programs in the mix so
  undefined rows actually occur.

The acceptance bar: 250+ schedules, zero oracle mismatches.  Schedules
are deterministic per seed, so any failure is replayable from the test
id alone.
"""

import os
import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.service import QueryService

#: Stratified-safe programs (registerable under every semantics).
TC = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
)
PAIRS = (
    "pair(X) :- a(X), b(X).\n"
    "only_a(X) :- a(X), not b(X).\n"
)

#: Non-stratified: ``win`` has undefined rows on move cycles under the
#: three-valued semantics — the answers that make the undefined-rows
#: half of the differential check earn its keep.
WIN = "win(X) :- move(X, Y), not win(Y).\n"

#: (program text, query predicates, update predicates)
STRATIFIED_POOL = [
    (TC, ("tc", "edge"), ("edge",)),
    (PAIRS, ("pair", "only_a"), ("a", "b")),
]
THREE_VALUED_POOL = STRATIFIED_POOL + [
    (WIN, ("win", "move"), ("move",)),
]

#: The six fuzzed service configurations:
#: (config id, semantics, incremental flag, maintenance, program pool).
CONFIGS = [
    ("stratified-dbsp", "stratified", True, "dbsp", STRATIFIED_POOL),
    ("stratified-legacy", "stratified", True, "legacy", STRATIFIED_POOL),
    ("stratified-recompute", "stratified", False, "dbsp", STRATIFIED_POOL),
    ("inflationary", "inflationary", True, "dbsp", THREE_VALUED_POOL),
    ("wellfounded", "wellfounded", True, "dbsp", THREE_VALUED_POOL),
    ("valid", "valid", True, "dbsp", THREE_VALUED_POOL),
]

pytestmark = pytest.mark.slow

#: The repo-wide seeded-suite scaling convention (pyproject markers):
#: REPRO_BENCH_SCALE=smoke shrinks the seed budget for quick local runs.
_SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

VIEWS = 4
OPS_PER_SCHEDULE = 12
#: 6 configs x 42 seeds = 252 schedules (x 7 at smoke).
SEEDS_PER_CONFIG = 7 if _SMOKE else 42
NODES = [Atom(f"n{i}") for i in range(5)]

_PARSED = {text: parse_program(text) for text, _, _ in THREE_VALUED_POOL}


def _seed_database(rng, update_predicates):
    database = Database()
    for predicate in update_predicates:
        database.declare(predicate)
    for predicate in update_predicates:
        for _ in range(rng.randint(1, 3)):
            database.add(predicate, *_random_row(rng, predicate))
    return database


def _random_row(rng, predicate):
    if predicate in ("edge", "move"):
        return (rng.choice(NODES), rng.choice(NODES))
    return (rng.choice(NODES),)


def _oracle(program_text, database, semantics):
    """From-scratch ground truth for one view's current database."""
    result = run(_PARSED[program_text], database, semantics=semantics)
    return result


def _check_view(service, name, state, semantics):
    """Compare every predicate's query_state answer with the oracle."""
    program_text, query_predicates, _ = state[name]
    database = service.view(name).database
    oracle = _oracle(program_text, database, semantics)
    for predicate in query_predicates:
        rows, undefined, stale = service.query_state(name, predicate)
        assert not stale
        expected_true = oracle.true_rows(predicate)
        expected_undefined = oracle.undefined_rows(predicate)
        assert rows == expected_true, (
            f"true-row mismatch on {name}/{predicate} under {semantics}: "
            f"service={sorted(map(repr, rows))} "
            f"oracle={sorted(map(repr, expected_true))}"
        )
        assert undefined == expected_undefined, (
            f"undefined-row mismatch on {name}/{predicate} under "
            f"{semantics}: service={sorted(map(repr, undefined))} "
            f"oracle={sorted(map(repr, expected_undefined))}"
        )


def _register(service, rng, name, state, semantics, incremental, pool):
    program_text, query_predicates, update_predicates = rng.choice(pool)
    service.register(
        name,
        program_text,
        semantics=semantics,
        database=_seed_database(rng, update_predicates),
        incremental=incremental,
    )
    state[name] = (program_text, query_predicates, update_predicates)


@pytest.mark.parametrize(
    "config", CONFIGS, ids=[config[0] for config in CONFIGS]
)
@pytest.mark.parametrize("seed", range(SEEDS_PER_CONFIG))
def test_random_schedule_matches_oracle(config, seed):
    config_id, semantics, incremental, maintenance, pool = config
    # A string seed hashes deterministically (unlike built-in hash()),
    # so a failing test id replays the exact schedule.
    rng = random.Random(f"{config_id}-{seed}")
    # Alternate the compactor mode schedule-by-schedule so the fuzz
    # also exercises reads over freshly compacted vs deep-chain cells.
    compactor = ("on-publish", "off")[seed % 2]
    service = QueryService(
        cache_capacity=32, compactor=compactor, compact_depth=2,
        compact_interval=3, maintenance=maintenance,
    )
    state = {}
    names = [f"v{i}" for i in range(VIEWS)]
    for name in names:
        _register(service, rng, name, state, semantics, incremental, pool)

    for _ in range(OPS_PER_SCHEDULE):
        name = rng.choice(names)
        op = rng.random()
        if op < 0.35:  # an insert burst (stacks snapshot delta cells)
            _, _, update_predicates = state[name]
            inserts = [
                (predicate, _random_row(rng, predicate))
                for predicate in (
                    rng.choice(update_predicates),
                ) * rng.randint(1, 3)
            ]
            service.update(name, inserts=inserts)
        elif op < 0.55:  # a delete of existing or phantom facts
            _, _, update_predicates = state[name]
            predicate = rng.choice(update_predicates)
            existing = list(service.view(name).database.rows(predicate))
            deletes = [(predicate, _random_row(rng, predicate))]
            if existing:
                deletes.append((predicate, rng.choice(existing)))
            service.update(name, deletes=deletes)
        elif op < 0.85:  # the differential check itself
            _check_view(service, name, state, semantics)
        elif op < 0.95:  # replace the registration in place
            _register(
                service, rng, name, state, semantics, incremental, pool
            )
        else:  # full unregister + re-register cycle
            service.unregister(name)
            _register(
                service, rng, name, state, semantics, incremental, pool
            )

    # Quiescent sweep: every surviving view still agrees with the
    # oracle on every predicate.
    for name in names:
        _check_view(service, name, state, semantics)


# ---------------------------------------------------------------------------
# The semiring axis: annotated views against the annotated oracle
# ---------------------------------------------------------------------------
#
# Same schedule shape as above, but each view is registered under an
# annotation semiring and every check compares both the *support* and
# the *annotation wire text* of every answer against a from-scratch
# :func:`repro.datalog.annotated_model` over the view's current
# database.  ``bool`` runs under both maintenance engines as the
# byte-identical baseline (its ``query_annotated`` must serve no
# annotations at all); ``naturals`` runs both annotated disciplines
# (weighted differential deltas and recompute-on-update); ``tropical``
# and ``why`` are recursive-safe (idempotent) and exercise the
# recompute discipline with recursion and negation in the mix.

from repro.datalog import annotated_model  # noqa: E402
from repro.semiring import get_semiring  # noqa: E402

#: Non-recursive, so every naturals annotation is derivation-finite on
#: any data — cyclic edges included.  (Recursive programs over cyclic
#: data diverge under ℕ, by design; see docs/SEMIRINGS.md.)
HOP = "hop(X, Z) :- edge(X, Y), edge(Y, Z).\n"

ACYCLIC_SAFE_POOL = [
    (HOP, ("hop", "edge"), ("edge",)),
]
IDEMPOTENT_POOL = [
    (TC, ("tc", "edge"), ("edge",)),
    (PAIRS, ("pair", "only_a"), ("a", "b")),
]

#: (config id, semiring, incremental flag, maintenance, pool,
#:  annotation texts drawn on inserts — () sends bare facts).
SEMIRING_CONFIGS = [
    ("bool-dbsp", "bool", True, "dbsp", STRATIFIED_POOL, ()),
    ("bool-legacy", "bool", True, "legacy", STRATIFIED_POOL, ()),
    ("naturals-differential", "naturals", True, "dbsp",
     ACYCLIC_SAFE_POOL, ("1", "2", "3")),
    ("naturals-recompute", "naturals", False, "dbsp",
     ACYCLIC_SAFE_POOL, ("1", "2", "3")),
    ("tropical", "tropical", True, "dbsp",
     IDEMPOTENT_POOL, ("0", "1", "2", "5")),
    ("why", "why", True, "dbsp", IDEMPOTENT_POOL, ()),
]

#: 6 configs x 12 seeds = 72 annotated schedules (x 4 at smoke).
SEMIRING_SEEDS = 4 if _SMOKE else 12

_PARSED.update(
    {text: parse_program(text) for text, _, _ in ACYCLIC_SAFE_POOL}
)


def _check_annotated_view(service, name, state, semiring_name):
    """Support *and* annotation text of every answer vs the oracle."""
    program_text, query_predicates, _ = state[name]
    semiring = get_semiring(semiring_name)
    database = service.view(name).database
    oracle = annotated_model(_PARSED[program_text], database, semiring)
    for predicate in query_predicates:
        rows, undefined, stale, annotations = service.query_annotated(
            name, predicate
        )
        assert not stale
        assert not undefined
        expected = oracle.get(predicate, {})
        assert rows == frozenset(expected), (
            f"support mismatch on {name}/{predicate} under "
            f"{semiring_name}: service={sorted(map(repr, rows))} "
            f"oracle={sorted(map(repr, expected))}"
        )
        if semiring_name == "bool":
            # The baseline: boolean views never construct annotation
            # tables, so the wire serves none.
            assert annotations is None
        else:
            expected_texts = {
                row: semiring.format(weight)
                for row, weight in expected.items()
            }
            assert dict(annotations) == expected_texts, (
                f"annotation mismatch on {name}/{predicate} under "
                f"{semiring_name}: service={dict(annotations)!r} "
                f"oracle={expected_texts!r}"
            )


def _register_annotated(
    service, rng, name, state, semiring_name, incremental, pool
):
    program_text, query_predicates, update_predicates = rng.choice(pool)
    service.register(
        name,
        program_text,
        semantics="stratified",
        database=_seed_database(rng, update_predicates),
        incremental=incremental,
        semiring=semiring_name,
    )
    state[name] = (program_text, query_predicates, update_predicates)


@pytest.mark.parametrize(
    "config", SEMIRING_CONFIGS, ids=[config[0] for config in SEMIRING_CONFIGS]
)
@pytest.mark.parametrize("seed", range(SEMIRING_SEEDS))
def test_random_semiring_schedule_matches_oracle(config, seed):
    config_id, semiring_name, incremental, maintenance, pool, texts = config
    rng = random.Random(f"{config_id}-{seed}")
    service = QueryService(
        cache_capacity=32,
        compactor=("on-publish", "off")[seed % 2],
        compact_depth=2,
        compact_interval=3,
        maintenance=maintenance,
    )
    state = {}
    names = [f"v{i}" for i in range(VIEWS)]
    for name in names:
        _register_annotated(
            service, rng, name, state, semiring_name, incremental, pool
        )

    for _ in range(OPS_PER_SCHEDULE):
        name = rng.choice(names)
        op = rng.random()
        if op < 0.35:  # insert burst, annotated where the algebra allows
            _, _, update_predicates = state[name]
            inserts = []
            annotations = {}
            for predicate in (
                rng.choice(update_predicates),
            ) * rng.randint(1, 3):
                row = _random_row(rng, predicate)
                inserts.append((predicate, row))
                if texts and rng.random() < 0.7:
                    # Wire-text annotations exercise the parse path;
                    # re-annotating a live fact is an absolute replace.
                    annotations[(predicate, row)] = rng.choice(texts)
            service.update(
                name, inserts=inserts, annotations=annotations or None
            )
        elif op < 0.55:  # delete existing or phantom facts
            _, _, update_predicates = state[name]
            predicate = rng.choice(update_predicates)
            existing = list(service.view(name).database.rows(predicate))
            deletes = [(predicate, _random_row(rng, predicate))]
            if existing:
                deletes.append((predicate, rng.choice(existing)))
            service.update(name, deletes=deletes)
        elif op < 0.85:  # the differential check itself
            _check_annotated_view(service, name, state, semiring_name)
        elif op < 0.95:  # replace the registration in place
            _register_annotated(
                service, rng, name, state, semiring_name, incremental, pool
            )
        else:  # full unregister + re-register cycle
            service.unregister(name)
            _register_annotated(
                service, rng, name, state, semiring_name, incremental, pool
            )

    # Quiescent sweep.
    for name in names:
        _check_annotated_view(service, name, state, semiring_name)
