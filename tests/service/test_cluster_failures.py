"""Router failure paths: crashes, drains, respawn — never a hang.

Every test here spins its own small cluster (these tests kill or drain
shards, so they cannot share topology).  Anti-hang protection is the
framed client's socket timeout — a hang surfaces as ``socket.timeout``
and fails the test — so the suite needs no external timeout plugin.

The acceptance invariants from the sharding issue live here:

* a worker crash mid-request returns a wire-coded structured error
  (``worker-unavailable``) to the client, never a hang;
* killing a worker under load never loses an acked update on the
  surviving shards, and the crashed shard's acked updates reappear
  after respawn-with-replay;
* drain re-routes the drained shard's views onto survivors with no
  acked update lost, a second drain of the same shard is rejected
  cleanly, and rolled-up counters stay monotone across the drain.
"""

import asyncio
import os
import shutil
import signal
import socket
import tempfile
import threading
import time

import pytest

from repro.robustness import ClusterError, WorkerUnavailable
from repro.service.cluster import ClusterClient, ClusterReplyError, cluster
from repro.service.cluster.router import (
    ClusterRouter,
    ViewRecord,
    WorkerHandle,
)

TC = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- edge(X, Y), tc(Y, Z)."

CLIENT_TIMEOUT = 60.0


@pytest.fixture
def fresh_cluster():
    directory = tempfile.mkdtemp(prefix="repro-cluf-")
    socket_path = os.path.join(directory, "fd")
    with cluster(
        socket_path, shards=2, heartbeat_interval=0.2
    ) as router:
        yield router, socket_path
    shutil.rmtree(directory, ignore_errors=True)


def _client(socket_path):
    return ClusterClient(socket_path, timeout=CLIENT_TIMEOUT)


def _views_on_both_shards(client, router, prefix):
    """Register views until both shards own at least one; return a
    ``{shard_id: view_name}`` pick per shard."""
    picks = {}
    for index in range(32):
        name = f"{prefix}{index}"
        client.register(name, TC)
        picks.setdefault(router.routing_table()[name], name)
        if len(picks) == 2:
            return picks
    raise AssertionError("consistent hash never hit both shards")


def _kill_worker(router, shard_id):
    process = router._workers[shard_id].process
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=10)


def _await_respawn(router, shard_id, incarnation, deadline=30.0):
    handle = router._workers[shard_id]
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if handle.incarnation > incarnation and handle.live:
            return
        time.sleep(0.05)
    raise AssertionError(f"{shard_id} never respawned")


class TestCrash:
    def test_crash_returns_wire_coded_error_not_hang(self):
        # A slow heartbeat makes the test deterministic: nothing
        # notices the kill until *our* request hits the dead worker, so
        # that request must surface the structured error.  (The failing
        # call itself wakes the supervisor, so respawn is still fast.)
        directory = tempfile.mkdtemp(prefix="repro-cluf-")
        socket_path = os.path.join(directory, "fd")
        try:
            with cluster(
                socket_path, shards=2, heartbeat_interval=30.0
            ) as router:
                self._check_crash_error_then_recovery(router, socket_path)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def _check_crash_error_then_recovery(self, router, socket_path):
        with _client(socket_path) as client:
            picks = _views_on_both_shards(client, router, "crash")
            victim_shard, victim_view = next(iter(picks.items()))
            client.insert(victim_view, "edge(a, b)")
            incarnation = router._workers[victim_shard].incarnation
            _kill_worker(router, victim_shard)
            # The next request to the dead shard fails fast with the
            # structured wire code, not a hang, not a raw disconnect.
            with pytest.raises(ClusterReplyError) as excinfo:
                client.query(victim_view, "tc")
            assert excinfo.value.code == "worker-unavailable"
            # Supervision respawns the worker and replays its views:
            # the acked insert is queryable again.
            _await_respawn(router, victim_shard, incarnation)
            deadline = time.monotonic() + 30
            while True:
                try:
                    rows, _ = client.query(victim_view, "tc")
                    break
                except ClusterReplyError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            assert rows == ["tc(a, b)"]

    def test_crash_under_load_loses_no_acked_update(self, fresh_cluster):
        """Writers hammer both shards; one worker dies mid-stream.

        Every insert the cluster *acked* must be queryable afterwards —
        on the surviving shard trivially, on the crashed shard via
        respawn-with-replay — and no client may hang (socket timeouts
        would fail the test)."""
        router, socket_path = fresh_cluster
        with _client(socket_path) as setup:
            picks = _views_on_both_shards(setup, router, "load")
        (victim_shard, victim_view), (_, survivor_view) = sorted(
            picks.items()
        )
        acked = {victim_view: [], survivor_view: []}
        unexpected = []
        stop = threading.Event()

        def writer(view):
            try:
                with _client(socket_path) as mine:
                    tick = 0
                    while not stop.is_set():
                        fact = f"edge(k{tick}, v{tick})"
                        tick += 1
                        try:
                            mine.insert(view, fact)
                        except ClusterReplyError:
                            continue  # unacked: allowed to be lost
                        acked[view].append(fact)
            except (socket.timeout, ConnectionError, OSError) as exc:
                # A transport drop mid-reply is fine (the write was not
                # acked); a *timeout* means a hang — record it.
                if isinstance(exc, socket.timeout):
                    unexpected.append(("hang", view, exc))

        threads = [
            threading.Thread(target=writer, args=(view,))
            for view in (victim_view, survivor_view)
        ]
        incarnation = router._workers[victim_shard].incarnation
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        _kill_worker(router, victim_shard)
        time.sleep(0.6)
        stop.set()
        for thread in threads:
            thread.join(timeout=CLIENT_TIMEOUT + 30)
            assert not thread.is_alive(), "writer hung"
        assert not unexpected, unexpected
        _await_respawn(router, victim_shard, incarnation)

        with _client(socket_path) as check:
            for view, facts in acked.items():
                deadline = time.monotonic() + 30
                while True:
                    try:
                        rows, _ = check.query(view, "edge")
                        break
                    except ClusterReplyError:
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.05)
                present = set(rows)
                missing = [
                    fact for fact in facts if fact not in present
                ]
                assert not missing, (view, missing[:5], len(missing))
        # Load actually exercised both shards.
        assert acked[survivor_view] and acked[victim_view]


class TestDrain:
    def test_drain_reroutes_views_and_keeps_answers(self, fresh_cluster):
        router, socket_path = fresh_cluster
        with _client(socket_path) as client:
            picks = _views_on_both_shards(client, router, "drain")
            (drained_shard, moved_view), (survivor_shard, kept_view) = (
                sorted(picks.items())
            )
            client.insert(moved_view, "edge(a, b)")
            client.insert(moved_view, "edge(b, c)")
            client.delete(moved_view, "edge(b, c)")
            client.insert(kept_view, "edge(p, q)")
            report = client.drain(drained_shard)
            assert report["shard"] == drained_shard
            # Every view now routes to the survivor...
            table = router.routing_table()
            assert set(table.values()) == {survivor_shard}
            assert table[moved_view] == survivor_shard
            # ...and the moved view's acked state survived the hop,
            # including the delete (replay is the *net* delta).
            rows, _ = client.query(moved_view, "tc")
            assert rows == ["tc(a, b)"]
            rows, _ = client.query(kept_view, "tc")
            assert rows == ["tc(p, q)"]
            # New registrations avoid the drained shard.
            client.register("post_drain", TC)
            assert router.routing_table()["post_drain"] == survivor_shard

    def test_double_drain_rejected_cleanly(self, fresh_cluster):
        _router, socket_path = fresh_cluster
        with _client(socket_path) as client:
            client.register("dd", TC)
            client.drain("shard-0")
            with pytest.raises(ClusterReplyError) as excinfo:
                client.drain("shard-0")
            assert excinfo.value.code == "cluster-error"
            # The cluster still serves after the rejected drain.
            rows, _ = client.query("dd", "tc")
            assert rows == []

    def test_drain_unknown_and_last_shard_rejected(self, fresh_cluster):
        _router, socket_path = fresh_cluster
        with _client(socket_path) as client:
            with pytest.raises(ClusterReplyError):
                client.drain("shard-99")
            client.drain("shard-1")
            # Draining the last shard would strand every view.
            with pytest.raises(ClusterReplyError) as excinfo:
                client.drain("shard-0")
            assert excinfo.value.code == "cluster-error"

    def test_rollup_monotone_across_drain_and_respawn(self, fresh_cluster):
        """The metamorphic acceptance check: rolled-up monotone counters
        never decrease across updates, a drain, a crash, and a respawn."""
        router, socket_path = fresh_cluster
        watched = (
            "inserts_applied",  # per-view rollup section
            "queries",
            "registrations",  # service-level counters section
            "requests_total",
        )

        def rollup(client):
            aggregate = client.metrics()
            merged = dict(aggregate["counters"])
            merged.update(aggregate["rollup"])
            return {name: merged.get(name, 0) for name in watched}

        with _client(socket_path) as client:
            picks = _views_on_both_shards(client, router, "mono")
            (drained_shard, moved_view), (_, kept_view) = sorted(
                picks.items()
            )
            series = [rollup(client)]
            for tick in range(5):
                client.insert(moved_view, f"edge(a{tick}, b{tick})")
                client.insert(kept_view, f"edge(a{tick}, b{tick})")
            client.query(moved_view, "tc")
            series.append(rollup(client))
            client.drain(drained_shard)
            series.append(rollup(client))  # drained counters retired
            client.query(moved_view, "tc")
            series.append(rollup(client))
            for before, after in zip(series, series[1:]):
                for name in watched:
                    assert after[name] >= before[name], (
                        name,
                        series,
                    )
            # The drained shard's work is preserved in the aggregate:
            # at least the 10 inserts and the registrations show up.
            assert series[-1]["inserts_applied"] >= 10

    def test_rollup_monotone_across_crash(self, fresh_cluster):
        router, socket_path = fresh_cluster
        watched = ("inserts_applied",)
        with _client(socket_path) as client:
            picks = _views_on_both_shards(client, router, "cmono")
            victim_shard, victim_view = sorted(picks.items())[0]
            for tick in range(4):
                client.insert(victim_view, f"edge(c{tick}, d{tick})")
            before = client.metrics()["rollup"]
            incarnation = router._workers[victim_shard].incarnation
            _kill_worker(router, victim_shard)
            _await_respawn(router, victim_shard, incarnation)
            deadline = time.monotonic() + 30
            while True:
                try:
                    after = client.metrics()["rollup"]
                    break
                except ClusterReplyError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            for name in watched:
                assert after.get(name, 0) >= before.get(name, 0), (
                    name,
                    before,
                    after,
                )


# ---------------------------------------------------------------------------
# router internals: the contracts the end-to-end suites race past
# ---------------------------------------------------------------------------


class TestRouterInternals:
    """Asyncio-level regression tests against fabricated topology.

    No worker processes are spawned; the tests pin down the ready-gate,
    drain-rollback, and inflight-accounting contracts directly, where
    the end-to-end suites can only hit them on a lucky interleaving.
    """

    @staticmethod
    def _run(scenario):
        directory = tempfile.mkdtemp(prefix="repro-cluri-")
        try:
            asyncio.run(scenario(os.path.join(directory, "fd")))
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    def test_route_mid_replay_parks_then_times_out_cleanly(self):
        # Regression: ClusterRouter never assigned self.request_timeout,
        # so routing to a live-but-not-ready shard (respawn replay in
        # progress) raised AttributeError instead of parking on the
        # ready gate — breaking the documented guarantee that requests
        # wait out the replay.
        async def scenario(socket_path):
            router = ClusterRouter(
                socket_path, shards=2, request_timeout=0.2
            )
            assert router.request_timeout == 0.2
            handle = router._workers["shard-0"]
            handle.live = True  # fresh incarnation accepts calls...
            assert not handle.ready.is_set()  # ...but is mid-replay
            router._routes.set({"v": "shard-0"})
            with pytest.raises(WorkerUnavailable, match="replay"):
                await router._route("v")

        self._run(scenario)

    def test_route_resumes_once_replay_finishes(self):
        async def scenario(socket_path):
            router = ClusterRouter(
                socket_path, shards=2, request_timeout=5.0
            )
            handle = router._workers["shard-0"]
            handle.live = True
            router._routes.set({"v": "shard-0"})

            async def finish_replay():
                await asyncio.sleep(0.02)
                handle.ready.set()

            task = asyncio.get_running_loop().create_task(finish_replay())
            assert await router._route("v") is handle
            await task

        self._run(scenario)

    def test_drain_rollback_on_replay_failure(self):
        # Regression: a replay failure mid-drain used to leave the ring
        # shrunk, handle.draining stuck True, and the shard wedged —
        # undrainable ("already drained"), unrespawnable, and excluded
        # from fan-outs while still owning routed views.
        async def scenario(socket_path):
            router = ClusterRouter(
                socket_path, shards=2, request_timeout=0.5
            )

            async def fake_call(line, timeout=None):
                return ["ok {}"]

            for handle in router._workers.values():
                handle.live = True
                handle.ready.set()
                handle.call = fake_call
            router._records["v"] = ViewRecord("stratified", "p(X):-q(X).")
            router._routes.set({"v": "shard-0"})

            async def failing_replay(name, target):
                raise ClusterError("survivor rejected the replay")

            router._replay_view = failing_replay
            with pytest.raises(ClusterError, match="survivor rejected"):
                await router.drain("shard-0")

            handle = router._workers["shard-0"]
            assert "shard-0" in router._ring  # back on the ring
            assert not handle.draining  # routable and supervisable again
            assert router.routing_table() == {"v": "shard-0"}
            assert "shard-0" not in router._drained
            assert not router._draining  # no waiter left parked
            assert router.counters["drains"] == 0
            assert await router._route("v") is handle
            # A retried drain is a fresh attempt, not "already drained".
            with pytest.raises(ClusterError) as excinfo:
                await router.drain("shard-0")
            assert "already drained" not in str(excinfo.value)

        self._run(scenario)

    def test_inflight_counts_requests_parked_on_the_slot_semaphore(self):
        # Regression: inflight was incremented only after acquiring the
        # concurrency slot, so drain's in-flight flush could miss a
        # parked request and replay its view onto a survivor before
        # the request's acked update landed on the old worker.
        async def scenario(socket_path):
            handle = WorkerHandle("shard-x", socket_path, max_concurrent=1)
            handle.live = True
            await handle._slots.acquire()  # occupy the only slot
            task = asyncio.get_running_loop().create_task(
                handle.call("views")
            )
            for _ in range(5):
                await asyncio.sleep(0)
            assert handle.inflight == 1  # the parked request is visible
            handle._slots.release()
            with pytest.raises(WorkerUnavailable):  # no socket behind it
                await task
            assert handle.inflight == 0

        self._run(scenario)
