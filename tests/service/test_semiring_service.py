"""Service-level tests for semiring-annotated views.

The acceptance path for PR 10's tentpole: a provenance-annotated query
answer round-trips the line protocol (``explain`` lines) and survives
WAL recovery byte-for-byte; plus the smaller contracts — annotation
replace/delete semantics, boolean views rejecting annotations, the
``--semiring`` validation, and atomic rejection of naturals updates
whose derivation space diverges.
"""

import pytest

from repro.relations import Atom
from repro.robustness import BudgetExceeded
from repro.service import QueryService, serve_stream
from repro.service.dbsp import DBSPEngine

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
"""

a, b, c = Atom("a"), Atom("b"), Atom("c")


def run_protocol(service, script):
    replies = []
    serve_stream(service, script.splitlines(), replies.append)
    return replies


class TestRegistration:
    def test_info_reports_semiring_only_when_annotated(self):
        service = QueryService()
        plain = service.register("plain", TC)
        assert "semiring" not in plain
        annotated = service.register("ann", TC, semiring="tropical")
        assert annotated["semiring"] == "tropical"
        service.close()

    def test_unknown_semiring_rejected_at_register(self):
        service = QueryService()
        with pytest.raises(ValueError, match="unknown semiring"):
            service.register("v", TC, semiring="nope")
        assert "v" not in service.name_table()
        service.close()

    def test_service_default_semiring_applies_to_views(self):
        service = QueryService(semiring="naturals")
        info = service.register("v", TC)
        assert info["semiring"] == "naturals"
        assert service.view("v").semiring == "naturals"
        service.close()

    def test_boolean_views_keep_the_fast_path(self):
        """semiring='bool' must take exactly the pre-annotation code
        path: a DBSP circuit underneath, no annotated engine."""
        service = QueryService()
        service.register("v", TC, semiring="bool")
        view = service.view("v")
        assert view.semiring == "bool"
        assert isinstance(view.engine, DBSPEngine)
        service.close()


class TestAnnotationSemantics:
    def _service(self, semiring="tropical"):
        service = QueryService(semiring=semiring)
        service.register("v", TC)
        return service

    def test_annotations_are_absolute_replacements(self):
        service = self._service()
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "3"})
        _, _, _, texts = service.query_annotated("v", "edge")
        assert texts == {(a, b): "3"}
        # Re-inserting with a new annotation replaces, never combines.
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "1"})
        _, _, _, texts = service.query_annotated("v", "edge")
        assert texts == {(a, b): "1"}
        service.close()

    def test_delete_then_reinsert_starts_fresh(self):
        service = self._service()
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "3"})
        service.update("v", deletes=[("edge", (a, b))])
        assert service.query("v", "edge") == frozenset()
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "4"})
        _, _, _, texts = service.query_annotated("v", "edge")
        assert texts == {(a, b): "4"}
        service.close()

    def test_derived_annotations_follow_the_algebra(self):
        service = self._service()
        service.update(
            "v",
            inserts=[("edge", (a, b)), ("edge", (b, c)), ("edge", (a, c))],
            annotations={
                ("edge", (a, b)): "1",
                ("edge", (b, c)): "1",
                ("edge", (a, c)): "5",
            },
        )
        _, _, _, texts = service.query_annotated("v", "tc")
        assert texts[(a, c)] == "2"  # min(5, 1 + 1)
        service.close()

    def test_boolean_view_rejects_annotations(self):
        service = QueryService()
        service.register("v", TC)
        with pytest.raises(ValueError, match="register with --semiring"):
            service.update("v", inserts=[("edge", (a, b))],
                           annotations={("edge", (a, b)): "3"})
        service.close()

    def test_query_annotated_on_boolean_view_has_no_texts(self):
        service = QueryService()
        service.register("v", TC)
        service.insert("v", "edge", a, b)
        rows, _, _, texts = service.query_annotated("v", "tc")
        assert rows == {(a, b)}
        assert texts is None
        service.close()

    def test_diverging_naturals_update_is_rejected_atomically(self):
        """A cycle has no finite bag annotation: the update raises and
        the view keeps serving its last good state."""
        service = QueryService(semiring="naturals")
        service.register("v", TC)
        service.insert("v", "edge", a, b)
        with pytest.raises(BudgetExceeded):
            service.insert("v", "edge", b, a)
        assert service.query("v", "tc") == {(a, b)}
        _, _, stale, texts = service.query_annotated("v", "tc")
        assert not stale and texts == {(a, b): "1"}
        service.close()


class TestLineProtocol:
    def test_annotated_insert_and_explain_round_trip(self):
        service = QueryService()
        script = (
            "register v stratified --semiring=tropical "
            "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
            "+v edge(a, b) @ 1\n"
            "+v edge(b, c) @ 1\n"
            "+v edge(a, c) @ 5\n"
            "query v tc\n"
        )
        replies = run_protocol(service, script)
        flat = "\n".join(replies)
        assert "explain tc(a, c) @ 2" in flat
        assert flat.rstrip().splitlines()[-1] == "ok 3 rows"
        # explain lines come after the row lines, before the ok line.
        lines = flat.rstrip().splitlines()
        first_explain = next(
            i for i, line in enumerate(lines) if line.startswith("explain")
        )
        assert all(
            line.startswith("explain") or line == "ok 3 rows"
            for line in lines[first_explain:]
        )
        service.close()

    def test_annotation_on_delete_is_an_error(self):
        service = QueryService()
        service.register("v", TC, semiring="tropical")
        (reply,) = run_protocol(service, "-v edge(a, b) @ 3\n")
        assert reply.startswith("error")
        assert "inserts only" in reply
        service.close()

    def test_annotation_on_boolean_view_is_an_error(self):
        service = QueryService()
        service.register("v", TC)
        (reply,) = run_protocol(service, "+v edge(a, b) @ 3\n")
        assert reply.startswith("error")
        service.close()


class TestDurability:
    PROGRAM = TC

    def _crash(self, service):
        # kill -9 simulation: drop the durability plane with no final
        # checkpoint; the WAL already holds every acked operation.
        service.durability.close(final_checkpoint=False)
        service.durability = None
        service.close()

    def _seed(self, service):
        service.register("v", self.PROGRAM, semiring="why")
        service.insert("v", "edge", a, b)
        service.insert("v", "edge", b, c)
        service.insert("v", "edge", a, c)

    def test_provenance_reply_survives_wal_recovery(self, tmp_path):
        """The PR's acceptance test: the annotated protocol reply is
        byte-identical before and after a crash recovered purely from
        the WAL."""
        service = QueryService(
            data_dir=str(tmp_path), fsync="off", checkpoint_every=10_000
        )
        self._seed(service)
        before = run_protocol(service, "query v tc\n")
        assert any("explain" in reply for reply in before)
        fingerprint = service.view("v").read_snapshot().fingerprint
        self._crash(service)

        recovered = QueryService(data_dir=str(tmp_path), fsync="off")
        try:
            after = run_protocol(recovered, "query v tc\n")
            assert after == before
            assert (
                recovered.view("v").read_snapshot().fingerprint
                == fingerprint
            )
        finally:
            recovered.close()

    def test_annotations_survive_checkpoint_restore(self, tmp_path):
        service = QueryService(
            data_dir=str(tmp_path), fsync="off", checkpoint_every=1
        )
        self._seed(service)
        before = run_protocol(service, "query v tc\n")
        service.close()  # clean shutdown: final checkpoint, cold WAL

        recovered = QueryService(data_dir=str(tmp_path), fsync="off")
        try:
            assert run_protocol(recovered, "query v tc\n") == before
        finally:
            recovered.close()

    def test_annotation_replace_and_delete_replay_converges(self, tmp_path):
        """WAL replay of replace → delete → re-insert lands on the
        same fingerprint the live service had (absolute annotations
        make replay idempotent)."""
        service = QueryService(
            data_dir=str(tmp_path), fsync="off", checkpoint_every=10_000,
            semiring="tropical",
        )
        service.register("v", self.PROGRAM)
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "3"})
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "1"})
        service.update("v", deletes=[("edge", (a, b))])
        service.update("v", inserts=[("edge", (a, b))],
                       annotations={("edge", (a, b)): "4"})
        fingerprint = service.view("v").read_snapshot().fingerprint
        self._crash(service)

        recovered = QueryService(data_dir=str(tmp_path), fsync="off")
        try:
            _, _, _, texts = recovered.query_annotated("v", "edge")
            assert texts == {(a, b): "4"}
            assert (
                recovered.view("v").read_snapshot().fingerprint
                == fingerprint
            )
        finally:
            recovered.close()
