"""Demand-driven bound-pattern queries through the serving tier.

Covers the service wiring of the magic-sets transform: the demand
registry lifecycle (ready gating, LRU eviction, batched republish, drop
on register/unregister), update propagation into ready entries on every
write path, the ``query <view> <pred>(a, _)`` protocol verb, the
fallback envelope, and the counters/gauges surfaced through stats,
metrics, and the Prometheus rendering.
"""

import threading

import pytest

from repro.relations import Atom
from repro.service import QueryService, parse_bound_pattern, serve_stream
from repro.service.demand import DemandEntry, DemandRegistry

a, b, c, d = (Atom(x) for x in "abcd")

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
edge(b, c).
"""


def run_protocol(service, script):
    replies = []
    serve_stream(service, script.splitlines(), replies.append)
    return replies


def demand_counters(service):
    counters = service.metrics_snapshot()["counters"]
    return {k: v for k, v in counters.items() if k.startswith("demand")}


class TestParseBoundPattern:
    def test_bound_and_free_positions(self):
        assert parse_bound_pattern("tc(a, _)") == ("tc", (a, None))
        assert parse_bound_pattern("tc(_, b)") == ("tc", (None, b))
        assert parse_bound_pattern("tc(a, b)") == ("tc", (a, b))
        assert parse_bound_pattern("p(1, _, x)") == ("p", (1, None, Atom("x")))

    def test_named_variables_are_free(self):
        assert parse_bound_pattern("tc(X, b)") == ("tc", (None, b))

    def test_repeated_named_variables_rejected(self):
        with pytest.raises(ValueError):
            parse_bound_pattern("tc(X, X)")

    def test_function_terms_rejected(self):
        with pytest.raises(ValueError):
            parse_bound_pattern("p(succ(a), _)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_bound_pattern("tc(a, _) extra")


class TestQueryPattern:
    def test_point_lookup_matches_filtered_full_answer(self):
        service = QueryService()
        service.register("g", TC)
        full, _, _ = service.query_state("g", "tc")
        rows, undefined, stale = service.query_pattern("g", "tc", (a, None))
        assert rows == {r for r in full if r[0] == a}
        assert undefined == frozenset()
        service.close()

    def test_new_constant_is_incremental_seed_insert(self):
        service = QueryService()
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))
        before = demand_counters(service)
        rows, _, _ = service.query_pattern("g", "tc", (b, None))
        assert rows == {(b, c)}
        after = demand_counters(service)
        # Same adornment: no second registration, one hit.
        assert after["demand_registrations"] == before["demand_registrations"]
        assert after["demand_hits"] == before["demand_hits"] + 1
        service.close()

    def test_base_update_propagates_into_ready_entry(self):
        service = QueryService()
        service.register("g", TC)
        assert service.query_pattern("g", "tc", (a, None))[0] == {
            (a, b),
            (a, c),
        }
        service.insert("g", "edge", c, d)
        assert service.query_pattern("g", "tc", (a, None))[0] == {
            (a, b),
            (a, c),
            (a, d),
        }
        service.delete("g", "edge", b, c)
        assert service.query_pattern("g", "tc", (a, None))[0] == {(a, b)}
        service.close()

    def test_propagation_through_group_commit_paths(self):
        # coalesce > 1 routes updates through the ticket queue; demand
        # entries must still see every applied batch.
        service = QueryService(coalesce=4)
        service.register("g", TC)
        assert (a, c) in service.query_pattern("g", "tc", (a, None))[0]
        service.update(
            "g", inserts=[("edge", (c, d))], deletes=[("edge", (a, b))]
        )
        rows, _, _ = service.query_pattern("g", "tc", (a, None))
        assert rows == frozenset()
        rows, _, _ = service.query_pattern("g", "tc", (b, None))
        assert rows == {(b, c), (b, d)}
        service.close()

    def test_base_fact_on_idb_predicate_served(self):
        service = QueryService()
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))
        service.insert("g", "tc", a, Atom("direct"))
        rows, _, _ = service.query_pattern("g", "tc", (a, None))
        assert (a, Atom("direct")) in rows
        service.close()

    def test_all_free_pattern_falls_through_to_full_query(self):
        service = QueryService()
        service.register("g", TC)
        rows, _, _ = service.query_pattern("g", "tc", (None, None))
        assert rows == service.query_state("g", "tc")[0]
        assert demand_counters(service)["demand_registrations"] == 0
        service.close()

    def test_edb_pattern_uses_fallback(self):
        service = QueryService()
        service.register("g", TC)
        rows, _, _ = service.query_pattern("g", "edge", (a, None))
        assert rows == {(a, b)}
        assert demand_counters(service)["demand_fallbacks"] == 1
        service.close()

    def test_inflationary_semantics_uses_fallback(self):
        service = QueryService()
        service.register("g", TC, semantics="inflationary")
        rows, _, _ = service.query_pattern("g", "tc", (a, None))
        assert rows == {(a, b), (a, c)}
        counters = demand_counters(service)
        assert counters["demand_fallbacks"] == 1
        assert counters["demand_registrations"] == 0
        service.close()

    def test_cone_query_memoizes_fallback_marker(self):
        # s is demanded all-free mid-rule, so its cone — which contains
        # the query predicate p — is evaluated unadorned and the
        # transform degenerates to a passthrough for p.
        source = """
        p(X) :- s(Y), t(X, Y).
        s(Y) :- p(Y).
        p(X) :- e(X).
        e(a). e(b). t(c, a).
        """
        service = QueryService()
        service.register("g", source)
        rows, _, _ = service.query_pattern("g", "p", (a,))
        assert rows == {(a,)}
        counters = demand_counters(service)
        # The passthrough decision registers a fallback marker...
        assert counters["demand_registrations"] == 1
        assert counters["demand_fallbacks"] == 1
        # ...and later queries reuse it without rebuilding.
        service.query_pattern("g", "p", (b, ))
        counters = demand_counters(service)
        assert counters["demand_registrations"] == 1
        assert counters["demand_fallbacks"] == 2
        service.close()

    def test_stratified_negation_is_demand_driven(self):
        source = """
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
        unreach(X, Y) :- node(X), node(Y), not tc(X, Y).
        node(a). node(b). node(c).
        edge(a, b).
        """
        service = QueryService()
        service.register("g", source)
        full, _, _ = service.query_state("g", "unreach")
        rows, _, _ = service.query_pattern("g", "unreach", (c, None))
        assert rows == {r for r in full if r[0] == c}
        assert demand_counters(service)["demand_registrations"] == 1
        service.close()

    def test_arity_mismatch_rejected(self):
        service = QueryService()
        service.register("g", TC)
        with pytest.raises(ValueError, match="arity"):
            service.query_pattern("g", "tc", (a,))
        service.close()

    def test_unknown_view_raises_keyerror(self):
        service = QueryService()
        with pytest.raises(KeyError):
            service.query_pattern("nope", "tc", (a, None))
        service.close()

    def test_reregister_and_unregister_drop_entries(self):
        service = QueryService()
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))
        assert service.demand.size() == 1
        service.register("g", TC)  # replace
        assert service.demand.size() == 0
        service.query_pattern("g", "tc", (a, None))
        assert service.demand.size() == 1
        service.unregister("g")
        assert service.demand.size() == 0
        service.close()

    def test_stale_generation_entry_not_reused_after_replace(self):
        service = QueryService()
        service.register("g", TC)
        rows, _, _ = service.query_pattern("g", "tc", (a, None))
        assert rows == {(a, b), (a, c)}
        service.register("g", "tc(X, Y) :- edge(X, Y).\nedge(a, d).")
        rows, _, _ = service.query_pattern("g", "tc", (a, None))
        assert rows == {(a, d)}
        service.close()


class TestDemandEviction:
    def test_lru_eviction_bumps_counter(self):
        service = QueryService(demand_capacity=2)
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))   # bf
        service.query_pattern("g", "tc", (None, b))   # fb
        service.query_pattern("g", "tc", (a, None))   # touch bf
        service.query_pattern("g", "tc", (a, b))      # bb -> evicts fb
        counters = demand_counters(service)
        assert counters["demand_registrations"] == 3
        assert counters["demand_evictions"] == 1
        assert service.demand.size() == 2
        keys = set(service.demand._table.get())
        adornments = {key[3] for key in keys}
        assert adornments == {"bf", "bb"}
        service.close()

    def test_evicted_pattern_rebuilds_on_next_query(self):
        service = QueryService(demand_capacity=1)
        service.register("g", TC)
        assert service.query_pattern("g", "tc", (a, None))[0] == {
            (a, b),
            (a, c),
        }
        assert service.query_pattern("g", "tc", (None, c))[0] == {
            (a, c),
            (b, c),
        }
        assert service.query_pattern("g", "tc", (a, None))[0] == {
            (a, b),
            (a, c),
        }
        assert demand_counters(service)["demand_evictions"] == 2
        service.close()


class TestDemandRegistryUnit:
    def test_ready_gate_blocks_until_complete(self):
        registry = DemandRegistry(capacity=4)
        key = ("v", 1, "p", "bf")
        entry, created, evicted = registry.get_or_create(key)
        assert created and not evicted
        seen = []

        def waiter():
            seen.append(entry.wait_ready(5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        entry.complete("the-view", None)
        thread.join(timeout=5.0)
        assert seen == ["the-view"]

    def test_failed_build_raises_per_waiter_copies(self):
        registry = DemandRegistry(capacity=4)
        entry, _, _ = registry.get_or_create(("v", 1, "p", "bf"))
        boom = RuntimeError("build died")
        entry.fail(boom)
        raised = []
        for _ in range(3):
            with pytest.raises(RuntimeError) as info:
                entry.wait_ready(1.0)
            raised.append(info.value)
        assert len({id(e) for e in raised}) == 3
        assert all(e.__cause__ is boom for e in raised)

    def test_unsettled_entries_never_evicted(self):
        registry = DemandRegistry(capacity=1)
        building, _, _ = registry.get_or_create(("v", 1, "p", "bf"))
        assert not building.settled
        other, created, evicted = registry.get_or_create(("v", 1, "p", "fb"))
        assert created
        assert evicted == []  # the building entry was not a candidate
        assert registry.size() == 2  # temporarily over capacity

    def test_batched_republish_bound(self):
        # S3: a churn storm of N register+evict cycles republishes once
        # per mutation and copies O(N * capacity) cells, not O(N^2).
        capacity = 8
        registry = DemandRegistry(capacity=capacity)
        churn = 200
        for i in range(churn):
            entry, created, _ = registry.get_or_create(("v", 1, "p", f"k{i}"))
            assert created
            entry.complete(None, None)
        assert registry.size() == capacity
        assert registry.republishes == churn
        assert registry.copied_cells <= churn * (capacity + 1)

    def test_drop_view_is_one_republish(self):
        registry = DemandRegistry(capacity=16)
        for i in range(10):
            entry, _, _ = registry.get_or_create(("v", 1, "p", f"k{i}"))
            entry.complete(None, None)
        before = registry.republishes
        assert registry.drop_view("v") == 10
        assert registry.republishes == before + 1
        assert registry.size() == 0

    def test_discard_ignores_superseded_entry(self):
        registry = DemandRegistry(capacity=4)
        key = ("v", 1, "p", "bf")
        first, _, _ = registry.get_or_create(key)
        first.complete(None, None)
        assert registry.discard(key, first)
        second, created, _ = registry.get_or_create(key)
        assert created
        assert not registry.discard(key, first)  # stale handle
        assert registry.lookup(key) is second

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DemandRegistry(capacity=0)


class TestProtocolVerb:
    def test_pattern_query_over_the_wire(self):
        service = QueryService()
        replies = run_protocol(
            service,
            "register g stratified "
            "tc(X, Y) :- edge(X, Y). tc(X, Z) :- edge(X, Y), tc(Y, Z). "
            "edge(a, b). edge(b, c).\n"
            "query g tc(a, _)\n"
            "+g edge(c, d)\n"
            "query g tc(a, _)\n"
            "query g tc(a, d)\n",
        )
        text = "\n".join(replies)
        assert "row tc(a, b)" in text
        assert "row tc(a, d)" in text
        assert replies[-1] == "ok 1 rows"
        service.close()

    def test_unbound_query_still_works(self):
        service = QueryService()
        replies = run_protocol(
            service,
            "register g stratified tc(X, Y) :- edge(X, Y). edge(a, b).\n"
            "query g tc\n",
        )
        assert "row tc(a, b)" in "\n".join(replies)
        service.close()

    def test_malformed_patterns_are_protocol_errors(self):
        service = QueryService()
        service.register("g", TC)
        for bad in (
            "query g tc(a, _) trailing",
            "query g tc(X, X)",
            "query g tc(a)",
            "query g",
            "query g tc extra",
        ):
            replies = run_protocol(service, bad)
            assert replies and replies[0].startswith("error"), bad
        service.close()

    def test_usage_line_mentions_pattern(self):
        service = QueryService()
        replies = run_protocol(service, "query g")
        assert "pattern" in replies[0] or "predicate" in replies[0]
        service.close()


class TestObservability:
    def test_gauge_and_counters_in_metrics_snapshot(self):
        service = QueryService()
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))
        service.query_pattern("g", "tc", (a, None))
        snapshot = service.metrics_snapshot()
        assert snapshot["gauges"]["demand_entries"] == 1
        counters = snapshot["counters"]
        assert counters["demand_registrations"] == 1
        assert counters["demand_hits"] == 1
        service.close()

    def test_prometheus_rendering_exposes_demand_series(self):
        from repro.service import render_prometheus

        service = QueryService()
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))
        text = render_prometheus(service.metrics_snapshot())
        assert "demand_registrations" in text
        assert "demand_entries" in text
        service.close()

    def test_close_clears_registry(self):
        service = QueryService()
        service.register("g", TC)
        service.query_pattern("g", "tc", (a, None))
        service.close()
        assert service.demand.size() == 0
