"""Randomized consistency property for incremental maintenance.

After ANY interleaving of inserts and deletes, the incrementally
maintained model must equal ``seminaive_stratified`` run from scratch
on the same extensional state.  We drive a materialized view through
random update sequences (single-fact and small batches) over a
stratified program with recursion and negation, checking equality
after every step.
"""

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_stratified
from repro.relations import Atom
from repro.service import MaterializedView, prepare_program

PROGRAM = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
reach(Y) :- source(X), tc(X, Y).
unreach(X) :- node(X), not reach(X).
"""

NODES = [Atom(f"n{i}") for i in range(6)]


def fresh_view(rng):
    db = Database()
    for node in NODES:
        db.add("node", node)
    db.add("source", NODES[0])
    universe = [(x, y) for x in NODES for y in NODES if x != y]
    for pair in rng.sample(universe, 8):
        db.add("edge", *pair)
    return MaterializedView(prepare_program("prop", PROGRAM), db), universe


def assert_matches_scratch(view, step):
    scratch = seminaive_stratified(parse_program(PROGRAM), view.engine.edb)
    model = view.engine.model()
    for predicate in set(scratch) | set(model):
        assert scratch.get(predicate, frozenset()) == model.get(
            predicate, frozenset()
        ), f"step {step}: {predicate} diverged"


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 23])
def test_random_single_fact_interleavings(seed):
    rng = random.Random(seed)
    view, universe = fresh_view(rng)
    assert_matches_scratch(view, "init")
    for step in range(40):
        pair = rng.choice(universe)
        if view.engine.edb.holds("edge", *pair):
            view.delete("edge", *pair)
        else:
            view.insert("edge", *pair)
        assert_matches_scratch(view, step)
    assert view.metrics.counters["recompute_fallbacks"] == 0


@pytest.mark.parametrize("seed", [3, 11])
def test_random_batched_interleavings(seed):
    rng = random.Random(seed)
    view, universe = fresh_view(rng)
    for step in range(15):
        inserts, deletes = [], []
        for pair in rng.sample(universe, rng.randint(1, 5)):
            if view.engine.edb.holds("edge", *pair):
                deletes.append(("edge", pair))
            else:
                inserts.append(("edge", pair))
        view.apply(inserts=inserts, deletes=deletes)
        assert_matches_scratch(view, step)
    assert view.metrics.counters["recompute_fallbacks"] == 0


@pytest.mark.parametrize("seed", [5])
def test_interleaving_touching_every_relation(seed):
    """Updates to node/source (the negation stratum inputs) also maintain."""
    rng = random.Random(seed)
    view, _ = fresh_view(rng)
    extra = Atom("extra")
    moves = [
        ("node", (extra,)),
        ("source", (NODES[3],)),
        ("edge", (NODES[0], extra)),
    ]
    for step in range(12):
        predicate, row = rng.choice(moves)
        if view.engine.edb.holds(predicate, *row):
            view.delete(predicate, *row)
        else:
            view.insert(predicate, *row)
        assert_matches_scratch(view, step)
