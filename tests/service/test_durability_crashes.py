"""The seeded crash matrix: kill the service at every durability fault
point, under every fsync mode, restart, and check the recovered state
against a from-scratch oracle.

The in-process matrix simulates ``kill -9`` by dropping the durability
plane with no final checkpoint — faithful because WAL appends are
single unbuffered writes (the file system already holds everything a
killed process would have left).  The invariant:

* every **acked** operation survives the crash (recovered state ⊇ the
  acked history's state),
* the one operation in flight when the fault fired may appear or not
  (it was never acked), but nothing else may,
* the recovered derived model equals a from-scratch evaluation over
  the recovered base facts,
* journal-covered rollup counters never regress past the last acked
  observation.

The matrix crosses in the **maintenance engine** (PR 8): every crash
point × fsync mode runs under both the dbsp delta-stream circuit and
the legacy counting/DRed engine, so WAL replay is exercised through
both maintenance paths; a group-commit test crashes a durable dbsp
service while racing writers coalesce, checking that every *acked*
ticket was journaled before its reply left the server.

Two subprocess tests then run the real thing end-to-end: ``SIGKILL``
with ``--fsync=always`` loses no acked update across a restart, and
``SIGTERM`` checkpoints on the way out (cold start replays nothing).
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

pytestmark = pytest.mark.slow

from repro.robustness import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    inject_faults,
)
from repro.robustness.faults import ALL_POINTS
from repro.service import QueryService

RULES = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."

SCRIPT = (
    ("insert", ("a", "b")),
    ("insert", ("b", "c")),
    ("delete", ("a", "b")),
    ("insert", ("c", "d")),
    ("insert", ("a", "e")),
    ("delete", ("b", "c")),
    ("insert", ("e", "f")),
)

MONOTONE_KEYS = ("inserts_applied", "deletes_applied")

FSYNC_MODES = ("always", "batch", "off")
CRASH_POINTS = (
    "durability.append",
    "durability.fsync",
    "durability.checkpoint",
)
MAINTENANCE_MODES = ("dbsp", "legacy")


def _durable(data_dir, fsync, maintenance="dbsp"):
    return QueryService(
        data_dir=str(data_dir), fsync=fsync, checkpoint_every=3,
        maintenance=maintenance,
    )


def _run_script(service):
    """Drive the fixed op script; returns the acked shadow state.

    ``shadow`` is the base-fact set after the last acked operation;
    ``pending`` the operation in flight when a fault fired (None when
    the script completed); ``last_rollup`` the rollup after the last
    ack."""
    shadow = set()
    pending = None
    registered = False
    last_rollup = {}
    try:
        pending = ("register", None)
        service.register("g", RULES)
        registered = True
        pending = None
        last_rollup = dict(service.metrics_snapshot()["rollup"])
        for op, row in SCRIPT:
            pending = (op, row)
            if op == "insert":
                service.insert("g", "edge", *row)
                shadow.add(("edge", row))
            else:
                service.delete("g", "edge", *row)
                shadow.discard(("edge", row))
            pending = None
            last_rollup = dict(service.metrics_snapshot()["rollup"])
    except InjectedFault:
        pass
    return shadow, pending, registered, last_rollup


def _crash(service):
    """Simulate kill -9: drop the plane without a final checkpoint.

    The close itself may hit an injected fsync fault — that is still a
    crash (the unbuffered writes already reached the page cache), not
    a test failure."""
    try:
        service.durability.close(final_checkpoint=False)
    except InjectedFault:
        pass


def _verify_recovery(
    data_dir, fsync, shadow, pending, registered, rollup,
    maintenance="dbsp",
):
    recovered = _durable(data_dir, fsync, maintenance)
    try:
        names = recovered.name_table()
        if "g" not in names:
            # Only possible when the register itself was the operation
            # that crashed — losing an unacked registration is fine,
            # losing an acked one is not.
            assert not registered or pending == ("register", None)
            assert shadow == set()
            return
        got = {
            (predicate, tuple(row))
            for predicate, row in recovered.view("g").database
        }
        candidates = [frozenset(shadow)]
        if pending is not None and pending[0] in ("insert", "delete"):
            altered = set(shadow)
            fact = ("edge", pending[1])
            if pending[0] == "insert":
                altered.add(fact)
            else:
                altered.discard(fact)
            candidates.append(frozenset(altered))
        assert frozenset(got) in candidates, (
            f"recovered base facts {sorted(got)} match neither the "
            f"acked state {sorted(shadow)} nor acked+pending {pending}"
        )
        # From-scratch oracle: the recovered derived model must equal a
        # clean evaluation over the recovered base facts.
        oracle = QueryService()
        oracle.register("g", RULES)
        if got:
            oracle.update("g", inserts=sorted(got))
        assert recovered.query("g", "tc") == oracle.query("g", "tc")
        oracle.close()
        # Monotone rollup for journal-covered counters.
        post = recovered.metrics_snapshot()["rollup"]
        for key in MONOTONE_KEYS:
            assert post.get(key, 0) >= rollup.get(key, 0), key
        assert recovered.metrics_snapshot()["counters"]["recoveries"] >= 1
    finally:
        recovered.close()


def _count_hits(data_dir, fsync, point, maintenance="dbsp"):
    """How often ``point`` fires during a fault-free scripted run."""
    counter = FaultInjector()
    with inject_faults(counter):
        service = _durable(data_dir, fsync, maintenance)
        _run_script(service)
        _crash(service)
    return counter.hits.get(point, 0)


@pytest.mark.parametrize("maintenance", MAINTENANCE_MODES)
@pytest.mark.parametrize("fsync", FSYNC_MODES)
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_matrix(tmp_path, fsync, point, maintenance):
    """Kill at the Nth reach of ``point``, for every N, then recover —
    replaying the WAL through the selected maintenance engine."""
    assert point in ALL_POINTS
    hits = _count_hits(tmp_path / "count", fsync, point, maintenance)
    if hits == 0:
        pytest.skip(f"{point} is never reached under fsync={fsync}")
    # hits+1 never fires: the full script runs, then the crash —
    # recovery must restore the complete acked history.
    for at_hit in range(1, hits + 2):
        data_dir = tmp_path / f"hit-{at_hit}"
        injector = FaultInjector([FaultRule(point, at_hit=at_hit, times=1)])
        with inject_faults(injector):
            service = _durable(data_dir, fsync, maintenance)
            shadow, pending, registered, rollup = _run_script(service)
            _crash(service)
        if at_hit > hits:
            assert pending is None, "the out-of-range rule must not fire"
        _verify_recovery(
            data_dir, fsync, shadow, pending, registered, rollup,
            maintenance,
        )


def test_group_commit_journal_survives_crash(tmp_path):
    """Racing writers through the coalescing queue, then kill -9.

    Group commit must not weaken durability: a ticket is acked only
    after the leader journaled its batch, so every update whose
    ``service.update`` returned survives the crash — however many
    tickets each circuit pass coalesced."""
    service = QueryService(
        data_dir=str(tmp_path), fsync="off", checkpoint_every=10_000,
        maintenance="dbsp", coalesce=4,
    )
    service.register("g", RULES)
    acked = set()
    acked_lock = threading.Lock()
    failures = []

    def writer(offset):
        try:
            for i in range(8):
                row = (f"w{offset}n{i}", f"w{offset}n{i + 1}")
                service.insert("g", "edge", *row)
                with acked_lock:
                    acked.add(("edge", row))
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures
    coalesced = service.metrics_snapshot()["rollup"].get(
        "delta_batches_coalesced", 0
    )
    _crash(service)

    recovered = QueryService(
        data_dir=str(tmp_path), fsync="off", maintenance="dbsp"
    )
    try:
        got = {
            (predicate, tuple(row))
            for predicate, row in recovered.view("g").database
        }
        assert got >= acked, sorted(acked - got)
        oracle = QueryService()
        oracle.register("g", RULES)
        oracle.update("g", inserts=sorted(got))
        assert recovered.query("g", "tc") == oracle.query("g", "tc")
        oracle.close()
    finally:
        recovered.close()
    # Not asserted > 0 — coalescing needs contention the scheduler may
    # not produce — but recorded so a sustained zero is visible.
    assert coalesced >= 0


def test_crash_during_recovery_is_retryable(tmp_path):
    """A fault at ``durability.recover`` aborts the boot cleanly; the
    next attempt recovers everything."""
    service = _durable(tmp_path, "batch")
    shadow, pending, registered, rollup = _run_script(service)
    assert pending is None
    _crash(service)
    injector = FaultInjector([FaultRule("durability.recover", times=1)])
    with inject_faults(injector):
        with pytest.raises(InjectedFault):
            _durable(tmp_path, "batch")
    # The failed boot released the data-dir lock and wrote nothing.
    _verify_recovery(tmp_path, "batch", shadow, None, registered, rollup)


def test_recovery_orders_atom_rows(tmp_path):
    """Recovery must order facts without comparing row values.

    Rows parsed from protocol text hold ``Atom``s, which define no
    ``<`` — so any checkpoint or WAL record carrying two facts of the
    same predicate used to crash recovery's ``sorted`` (a plain-string
    row, as the rest of this file uses, sorts fine and hid the bug)."""
    from repro.service.server import parse_fact

    facts = [
        parse_fact("edge(a, b)"),
        parse_fact("edge(b, c)"),
        parse_fact("edge(c, d)"),
    ]
    # WAL-replay path: one multi-fact batch, crash before any
    # checkpoint — replay re-drives the batch through ``_apply_record``.
    service = QueryService(
        data_dir=str(tmp_path / "wal"), fsync="off",
        checkpoint_every=10_000, maintenance="dbsp",
    )
    service.register("g", RULES)
    service.update("g", inserts=facts)
    _crash(service)
    recovered = QueryService(data_dir=str(tmp_path / "wal"), fsync="off")
    try:
        assert recovered.last_recovery.replayed_records >= 1
        rows = {tuple(map(str, row)) for row in recovered.query("g", "tc")}
        assert ("a", "d") in rows
    finally:
        recovered.close()
    # Checkpoint-restore path: graceful close checkpoints the full
    # fact set — restore diffs and sorts it in ``_restore_view``.
    service = QueryService(
        data_dir=str(tmp_path / "ckpt"), fsync="off", maintenance="dbsp"
    )
    service.register("g", RULES)
    service.update("g", inserts=facts)
    service.close()
    recovered = QueryService(data_dir=str(tmp_path / "ckpt"), fsync="off")
    try:
        assert recovered.last_recovery.views_restored == 1
        assert recovered.last_recovery.replayed_records == 0
        rows = {tuple(map(str, row)) for row in recovered.query("g", "tc")}
        assert ("a", "d") in rows
    finally:
        recovered.close()


def test_repeated_crashes_converge(tmp_path):
    """Crash-recover-crash-recover: each generation keeps the state."""
    service = _durable(tmp_path, "off")
    shadow, pending, _registered, _rollup = _run_script(service)
    assert pending is None
    _crash(service)
    generations = []
    for _round in range(3):
        recovered = _durable(tmp_path, "off")
        generations.append(recovered.last_recovery.generation)
        got = {
            (predicate, tuple(row))
            for predicate, row in recovered.view("g").database
        }
        assert got == shadow
        _crash(recovered)
    assert generations == sorted(generations)
    assert len(set(generations)) == 3


# ---------------------------------------------------------------------------
# subprocess end-to-end: real processes, real signals
# ---------------------------------------------------------------------------


class _LineClient:
    """A minimal client for the single-process line protocol."""

    def __init__(self, socket_path, timeout=30.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(socket_path)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.writer = self.sock.makefile("w", encoding="utf-8")

    def request(self, line):
        self.writer.write(line + "\n")
        self.writer.flush()
        replies = []
        while True:
            reply = self.reader.readline()
            if not reply:
                raise ConnectionError("server closed mid-reply")
            reply = reply.rstrip("\n")
            replies.append(reply)
            if reply == "ok" or reply.startswith(("ok ", "error")):
                return replies

    def request_ok(self, line):
        replies = self.request(line)
        assert not replies[-1].startswith("error"), replies[-1]
        return replies

    def close(self):
        self.sock.close()


def _spawn_server(socket_path, data_dir, fsync):
    env = dict(os.environ)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.path.join(root, "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--data-dir",
            data_dir,
            f"--fsync={fsync}",
            "--checkpoint-every=1000",
        ],
        env=env,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 60
    while not os.path.exists(socket_path):
        if process.poll() is not None:
            raise AssertionError(
                f"server died on startup: "
                f"{process.stderr.read().decode(errors='replace')}"
            )
        assert time.monotonic() < deadline, "socket never appeared"
        time.sleep(0.05)
    return process


def test_sigkill_loses_no_acked_update_with_fsync_always(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    data_dir = str(tmp_path / "data")
    process = _spawn_server(socket_path, data_dir, "always")
    try:
        client = _LineClient(socket_path)
        client.request_ok(f"register g stratified {RULES}")
        client.request_ok("+g edge(a, b)")
        client.request_ok("+g edge(b, c)")
        client.close()
    finally:
        # kill -9: nothing flushes, nothing checkpoints.
        process.kill()
        process.wait(timeout=30)
    os.unlink(socket_path)

    process = _spawn_server(socket_path, data_dir, "always")
    try:
        client = _LineClient(socket_path)
        replies = client.request_ok("query g tc")
        rows = sorted(r for r in replies if r.startswith("row "))
        assert rows == [
            "row tc(a, b)",
            "row tc(a, c)",
            "row tc(b, c)",
        ], rows
        client.close()
    finally:
        process.terminate()
        process.wait(timeout=30)


def test_sigterm_checkpoints_and_unlinks_the_socket(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    data_dir = str(tmp_path / "data")
    process = _spawn_server(socket_path, data_dir, "batch")
    client = _LineClient(socket_path)
    client.request_ok(f"register g stratified {RULES}")
    client.request_ok("+g edge(x, y)")
    client.close()
    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=30) == 0
    assert not os.path.exists(socket_path), "graceful exit unlinks"
    # The shutdown checkpoint covered everything: a cold start replays
    # no WAL records and still has the acked state.
    service = QueryService(data_dir=data_dir, fsync="batch")
    try:
        assert service.last_recovery.replayed_records == 0
        assert service.last_recovery.views_restored == 1
        rows = {tuple(map(str, row)) for row in service.query("g", "tc")}
        assert rows == {("x", "y")}
    finally:
        service.close()
