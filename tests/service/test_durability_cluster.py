"""Durable cluster control plane: cold-start recovery of the router.

The router journals its control plane — registrations, acked
base-fact updates, drains — and checkpoints the routing table.  These
tests restart real multi-process clusters against the same data
directory and check that the recovered topology serves exactly the
pre-crash state:

* graceful stop → cold start restores from the checkpoint (no replay),
* crash (no final checkpoint) → the WAL suffix replays acked updates,
* a drained shard stays drained and its views stay re-homed,
* the rolled-up metrics never regress across the restart.
"""

import os
import shutil
import tempfile

import pytest

from repro.service.cluster import ClusterClient, cluster

TC = (
    "tc(X, Y) :- edge(X, Y). "
    "tc(X, Z) :- tc(X, Y), edge(Y, Z)."
)


@pytest.fixture()
def workspace():
    directory = tempfile.mkdtemp(prefix="repro-dclu-")
    yield (
        os.path.join(directory, "fd"),
        os.path.join(directory, "data"),
    )
    shutil.rmtree(directory, ignore_errors=True)


def _crash_router(router):
    """Drop the durability plane with no final checkpoint: the on-disk
    state is exactly what a killed router process would leave."""
    router.durability.close(final_checkpoint=False)
    router.durability = None


def test_graceful_restart_restores_routing_table(workspace):
    socket_path, data_dir = workspace
    with cluster(socket_path, shards=2, data_dir=data_dir):
        with ClusterClient(socket_path) as client:
            for index in range(4):
                client.register(f"view{index}", TC)
            client.insert("view0", "edge(a, b)")
            client.insert("view0", "edge(b, c)")
            client.delete("view0", "edge(b, c)")
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        report = router.last_recovery
        assert report["views_restored"] == 4
        assert report["replayed_records"] == 0, "checkpoint covered all"
        assert report["views_reassigned"] == 0
        with ClusterClient(socket_path) as client:
            assert sorted(client.views()) == [f"view{i}" for i in range(4)]
            rows, _ = client.query("view0", "tc")
            assert rows == ["tc(a, b)"]


def test_crash_replays_acked_updates(workspace):
    socket_path, data_dir = workspace
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        with ClusterClient(socket_path) as client:
            client.register("g", TC)
        # Checkpoint the registration, then crash with journaled-only
        # updates in the WAL tail.
        router.durability.checkpoint()
        with ClusterClient(socket_path) as client:
            client.insert("g", "edge(a, b)")
            client.insert("g", "edge(b, c)")
        _crash_router(router)
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        report = router.last_recovery
        assert report["replayed_records"] == 2
        with ClusterClient(socket_path) as client:
            rows, _ = client.query("g", "tc")
            assert sorted(rows) == [
                "tc(a, b)",
                "tc(a, c)",
                "tc(b, c)",
            ]


def test_crash_with_no_checkpoint_at_all(workspace):
    """Even the registrations live only in the WAL: full replay."""
    socket_path, data_dir = workspace
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        with ClusterClient(socket_path) as client:
            client.register("g", TC)
            client.insert("g", "edge(p, q)")
        _crash_router(router)
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        assert router.last_recovery["replayed_records"] == 2
        with ClusterClient(socket_path) as client:
            rows, _ = client.query("g", "tc")
            assert rows == ["tc(p, q)"]


def test_drained_shard_stays_drained_across_restart(workspace):
    socket_path, data_dir = workspace
    with cluster(socket_path, shards=3, data_dir=data_dir) as router:
        with ClusterClient(socket_path) as client:
            for index in range(6):
                client.register(f"view{index}", TC)
                client.insert(f"view{index}", f"edge(n{index}, m{index})")
            victim = router.routing_table()["view0"]
            summary = client.drain(victim)
            assert "view0" in summary["moved_views"]
        pre_routes = dict(router.routing_table())
    with cluster(socket_path, shards=3, data_dir=data_dir) as router:
        assert router.routing_table() == pre_routes
        describe = router.describe()
        assert describe["shards"][victim]["drained"] is True
        assert describe["shards"][victim]["live"] is False
        with ClusterClient(socket_path) as client:
            for index in range(6):
                rows, _ = client.query(f"view{index}", "tc")
                assert rows == [f"tc(n{index}, m{index})"]
            # The drained shard rejects new work exactly as before.
            shards = client.shards()
            assert shards["shards"][victim]["drained"] is True


def test_restart_with_fewer_shards_reassigns_views(workspace):
    socket_path, data_dir = workspace
    with cluster(socket_path, shards=3, data_dir=data_dir):
        with ClusterClient(socket_path) as client:
            for index in range(6):
                client.register(f"view{index}", TC)
                client.insert(f"view{index}", "edge(a, b)")
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        routes = router.routing_table()
        assert set(routes.values()) <= {"shard-0", "shard-1"}
        with ClusterClient(socket_path) as client:
            for index in range(6):
                rows, _ = client.query(f"view{index}", "tc")
                assert rows == ["tc(a, b)"]


def test_metrics_rollup_monotone_across_restart(workspace):
    socket_path, data_dir = workspace
    with cluster(socket_path, shards=2, data_dir=data_dir) as router:
        with ClusterClient(socket_path) as client:
            client.register("g", TC)
            client.insert("g", "edge(a, b)")
            client.insert("g", "edge(b, c)")
            # A metrics fan-out records per-shard last_counters, which
            # the checkpoint banks for the next incarnation.
            before = client.metrics()
        router.durability.checkpoint()
        _crash_router(router)
    with cluster(socket_path, shards=2, data_dir=data_dir):
        with ClusterClient(socket_path) as client:
            after = client.metrics()
    for key, value in before["rollup"].items():
        assert after["rollup"].get(key, 0) >= value, key
    for key in ("requests_total", "forwarded_total"):
        assert (
            after["router"]["counters"][key]
            >= before["router"]["counters"][key]
        ), key
    assert after["router"]["counters"]["recoveries"] >= 2
    assert after["router"]["durability"]["generation"] >= 2
