"""Materialized views: incremental fast path and recompute fallback."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_stratified
from repro.datalog.stratification import NotStratifiedError
from repro.relations import Atom
from repro.service import MaterializedView, prepare_program

a, b, c, d, e = (Atom(x) for x in "abcde")

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""

TC_NEG = TC + "unreach(X, Y) :- node(X), node(Y), not tc(X, Y).\n"

WIN = "win(X) :- move(X, Y), not win(Y).\n"


def scratch_equal(view, program_text):
    """The resident model must equal from-scratch evaluation."""
    scratch = seminaive_stratified(parse_program(program_text), view.engine.edb)
    model = view.engine.model()
    for predicate in set(scratch) | set(model):
        assert scratch.get(predicate, frozenset()) == model.get(
            predicate, frozenset()
        ), predicate


@pytest.fixture()
def tc_view():
    db = Database().add("edge", a, b).add("edge", b, c)
    return MaterializedView(prepare_program("tc", TC), db)


class TestIncrementalFastPath:
    def test_initial_model(self, tc_view):
        assert tc_view.mode == "incremental"
        assert tc_view.rows("tc") == {(a, b), (b, c), (a, c)}
        assert tc_view.undefined_rows("tc") == frozenset()

    def test_insert_extends_closure(self, tc_view):
        summary = tc_view.insert("edge", c, d)
        assert summary["mode"] == "incremental"
        assert summary["delta_plus"] == 4  # edge + 3 new tc pairs
        assert (a, d) in tc_view.rows("tc")
        scratch_equal(tc_view, TC)

    def test_delete_shrinks_closure(self, tc_view):
        tc_view.delete("edge", b, c)
        assert tc_view.rows("tc") == {(a, b)}
        scratch_equal(tc_view, TC)

    def test_delete_with_alternative_path_rederives(self, tc_view):
        tc_view.insert("edge", a, c)  # second route a→c
        tc_view.delete("edge", b, c)
        assert (a, c) in tc_view.rows("tc")
        assert tc_view.metrics.counters["rederived_total"] >= 1
        scratch_equal(tc_view, TC)

    def test_cycle_collapse(self, tc_view):
        tc_view.insert("edge", c, a)  # now a cycle: tc is total on {a,b,c}
        assert len(tc_view.rows("tc")) == 9
        tc_view.delete("edge", c, a)
        assert tc_view.rows("tc") == {(a, b), (b, c), (a, c)}
        scratch_equal(tc_view, TC)

    def test_noop_updates_change_nothing(self, tc_view):
        before = tc_view.rows("tc")
        summary = tc_view.apply(
            inserts=[("edge", (a, b))], deletes=[("edge", (d, e))]
        )
        assert summary["delta_plus"] == 0 and summary["delta_minus"] == 0
        assert tc_view.rows("tc") == before

    def test_batch_mixing_inserts_and_deletes(self, tc_view):
        tc_view.apply(
            inserts=[("edge", (c, d)), ("edge", (d, e))],
            deletes=[("edge", (a, b))],
        )
        assert (b, e) in tc_view.rows("tc")
        assert all(row[0] != a for row in tc_view.rows("tc"))
        scratch_equal(tc_view, TC)

    def test_negation_across_strata(self):
        db = Database()
        for node in (a, b, c):
            db.add("node", node)
        db.add("edge", a, b)
        view = MaterializedView(prepare_program("tcn", TC_NEG), db)
        assert (a, c) in view.rows("unreach")
        view.insert("edge", b, c)
        assert (a, c) not in view.rows("unreach")
        scratch_equal(view, TC_NEG)
        view.delete("edge", a, b)
        assert (a, c) in view.rows("unreach")
        scratch_equal(view, TC_NEG)

    def test_fact_for_idb_predicate(self, tc_view):
        # A base fact for a derived predicate: survives deletion of the
        # rules' support, disappears only when itself deleted.
        tc_view.insert("tc", d, e)
        assert (d, e) in tc_view.rows("tc")
        scratch_equal(tc_view, TC)
        tc_view.delete("tc", d, e)
        assert (d, e) not in tc_view.rows("tc")
        scratch_equal(tc_view, TC)

    def test_arity_mismatch_rejected(self, tc_view):
        with pytest.raises(ValueError):
            tc_view.insert("edge", a)

    def test_seed_facts_merge_into_database(self):
        view = MaterializedView(prepare_program("tc", TC + "edge(a, b).\n"))
        assert view.rows("tc") == {(a, b)}

    def test_stratified_semantics_on_nonstratified_program_rejected(self):
        with pytest.raises(NotStratifiedError):
            MaterializedView(prepare_program("win", WIN), semantics="stratified")


class TestRecomputeFallback:
    def test_nonstratified_routes_to_recompute(self):
        db = Database().add("move", a, b).add("move", b, c).add("move", d, d)
        view = MaterializedView(
            prepare_program("win", WIN), db, semantics="valid"
        )
        assert view.mode == "recompute"
        assert view.rows("win") == {(b,)}
        assert view.undefined_rows("win") == {(d,)}

    def test_update_counts_fallback_and_stays_correct(self):
        db = Database().add("move", a, b)
        view = MaterializedView(
            prepare_program("win", WIN), db, semantics="valid"
        )
        assert view.rows("win") == {(a,)}
        summary = view.delete("move", a, b)
        assert summary["mode"] == "recompute"
        assert view.rows("win") == frozenset()
        # Routine recompute-mode traffic is counted as recompute_batches;
        # recompute_fallbacks is reserved for genuine incremental-path
        # failures, so it must stay zero here.
        assert view.metrics.counters["recompute_batches"] == 1
        assert view.metrics.counters["recompute_fallbacks"] == 0

    def test_forced_recompute_on_stratified_program(self):
        db = Database().add("edge", a, b).add("edge", b, c)
        view = MaterializedView(
            prepare_program("tc", TC), db, incremental=False
        )
        assert view.mode == "recompute"
        assert view.rows("tc") == {(a, b), (b, c), (a, c)}
        view.insert("edge", c, d)
        assert (a, d) in view.rows("tc")
        assert view.metrics.counters["recompute_batches"] == 1
        assert view.metrics.counters["recompute_fallbacks"] == 0

    def test_ground_cache_reused_when_state_revisits(self):
        db = Database().add("move", a, b)
        view = MaterializedView(
            prepare_program("win2", WIN), db, semantics="valid"
        )
        view.rows("win")
        view.insert("move", b, c)
        view.rows("win")
        view.delete("move", b, c)  # back to the original fingerprint
        view.rows("win")
        assert view.prepared.ground_cache_hits == 1

    def test_wellfounded_semantics_served(self):
        db = Database().add("move", d, d)
        view = MaterializedView(
            prepare_program("win3", WIN), db, semantics="wellfounded"
        )
        assert view.undefined_rows("win") == {(d,)}
