"""Concurrency stress: many threads, many views, one truth.

The service shards its lock per view, so this suite hammers it from
many threads at once and checks the two properties the sharding must
preserve:

* **oracle agreement** — every response a thread receives (and the
  final state of every surviving view) matches a from-scratch
  evaluation of the view's program over the acknowledged facts;
* **linearizability of batches** — a query never observes a
  half-applied update batch.  Every batch inserts (or deletes) a
  *pair* of facts ``a(x), b(x)`` atomically, and the registered
  program derives ``broken(X) :- a(X), not b(X)`` — so any query that
  catches a batch mid-flight would see ``broken`` non-empty.
"""

import random
import threading

import pytest

pytestmark = pytest.mark.slow

from repro.datalog.database import Database
from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.service import QueryService

THREADS = 8
SHARED_VIEWS = 4
OPS_PER_THREAD = 30  # 8 threads x 30 ops = 240 mixed operations

#: The invariant program: ``broken`` is non-empty iff exactly one half
#: of an (a, b) pair batch is visible — i.e. iff a batch is observed
#: half-applied.  ``pair`` is the payload the oracle checks.
PAIR_RULES = (
    "pair(X) :- a(X), b(X).\n"
    "broken(X) :- a(X), not b(X).\n"
    "reach(X, Y) :- link(X, Y).\n"
    "reach(X, Z) :- reach(X, Y), link(Y, Z).\n"
)
PAIR_PROGRAM = parse_program(PAIR_RULES)


def _oracle(database):
    """From-scratch evaluation of the pair program over ``database``."""
    result = run(PAIR_PROGRAM, database, semantics="stratified")
    return {
        predicate: result.true_rows(predicate)
        for predicate in ("pair", "broken", "reach")
    }


def _seed_database():
    database = Database()
    database.declare("a").declare("b").declare("link")
    database.add("link", Atom("n0"), Atom("n1"))
    return database


class TestConcurrencyStress:
    def test_shared_views_under_mixed_load(self):
        """≥8 threads, ≥4 views, ≥200 mixed ops, every reply checked."""
        service = QueryService(cache_capacity=64)
        view_names = [f"v{i}" for i in range(SHARED_VIEWS)]
        for name in view_names:
            service.register(name, PAIR_RULES, database=_seed_database())

        # Each thread owns a disjoint id space, so its view of "my pairs
        # are present/absent" is exact even while other threads write to
        # the same view concurrently.
        errors = []
        broken_observations = []
        barrier = threading.Barrier(THREADS)
        # Acknowledged per-(thread, view) pair ids, for the final oracle.
        acked = [
            {name: set() for name in view_names} for _ in range(THREADS)
        ]

        def worker(thread_id):
            rng = random.Random(1000 + thread_id)
            barrier.wait()
            try:
                for step in range(OPS_PER_THREAD):
                    name = rng.choice(view_names)
                    op = rng.random()
                    mine = acked[thread_id][name]
                    token = Atom(f"t{thread_id}_{step}")
                    if op < 0.45 or not mine:
                        # Atomic pair insert.
                        service.update(
                            name,
                            inserts=[("a", (token,)), ("b", (token,))],
                        )
                        mine.add(token)
                    elif op < 0.65:
                        # Atomic pair delete of one of my own tokens.
                        victim = rng.choice(sorted(mine, key=str))
                        service.update(
                            name,
                            deletes=[("a", (victim,)), ("b", (victim,))],
                        )
                        mine.discard(victim)
                    else:
                        # Query: the linearizability probe plus an exact
                        # check over my own id space.
                        broken = service.query(name, "broken")
                        if broken:
                            broken_observations.append((name, broken))
                        pairs = service.query(name, "pair")
                        visible = {
                            row[0]
                            for row in pairs
                            if str(row[0]).startswith(f"t{thread_id}_")
                        }
                        if visible != mine:
                            errors.append(
                                f"thread {thread_id} view {name}: "
                                f"saw {visible}, acked {mine}"
                            )
            except Exception as exc:  # surfaced after join
                errors.append(f"thread {thread_id}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
        # No query ever observed a half-applied (a, b) pair batch.
        assert not broken_observations, broken_observations

        # Final oracle: every surviving view's answers equal a
        # from-scratch evaluation over its acknowledged database.
        for name in view_names:
            view = service.view(name)
            assert not view.stale
            expected = _oracle(view.database)
            for predicate, rows in expected.items():
                assert service.query(name, predicate) == rows
            # ... and the acknowledged tokens are exactly the union of
            # what every thread believes it left behind.
            union = set().union(*(acked[i][name] for i in range(THREADS)))
            assert {row[0] for row in expected["pair"]} == union

    def test_register_unregister_churn_under_load(self):
        """Unregister/re-register races against traffic on other views."""
        service = QueryService(cache_capacity=64)
        stable = [f"s{i}" for i in range(SHARED_VIEWS)]
        for name in stable:
            service.register(name, PAIR_RULES, database=_seed_database())

        errors = []
        stop = threading.Event()
        barrier = threading.Barrier(THREADS)

        def traffic(thread_id):
            """Steady query/update load on the stable views."""
            rng = random.Random(2000 + thread_id)
            barrier.wait()
            step = 0
            try:
                while not stop.is_set() and step < OPS_PER_THREAD:
                    name = rng.choice(stable)
                    token = Atom(f"c{thread_id}_{step}")
                    service.update(
                        name, inserts=[("a", (token,)), ("b", (token,))]
                    )
                    if service.query(name, "broken"):
                        errors.append(f"broken non-empty on {name}")
                    step += 1
            except Exception as exc:
                errors.append(f"traffic {thread_id}: {type(exc).__name__}: {exc}")

        def churner(thread_id):
            """Registers and unregisters private views, checking each."""
            barrier.wait()
            name = f"churn{thread_id}"
            try:
                for round_number in range(10):
                    service.register(
                        name, PAIR_RULES, database=_seed_database()
                    )
                    token = Atom(f"r{round_number}")
                    service.update(
                        name, inserts=[("a", (token,)), ("b", (token,))]
                    )
                    assert service.query(name, "pair") == {(token,)}
                    info = service.unregister(name)
                    assert info["name"] == name
                    with pytest.raises(KeyError):
                        service.query(name, "pair")
            except Exception as exc:
                errors.append(f"churn {thread_id}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=traffic, args=(i,)) for i in range(6)
        ] + [threading.Thread(target=churner, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stop.set()
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors

        # The churned views are gone; the stable ones agree with the
        # from-scratch oracle.
        assert set(service.stats()["views"]) == set(stable)
        for name in stable:
            expected = _oracle(service.view(name).database)
            assert service.query(name, "pair") == expected["pair"]
            assert service.query(name, "broken") == frozenset()

    def test_parallel_readers_share_one_view(self):
        """Pure read load from many threads returns identical answers."""
        service = QueryService()
        database = _seed_database()
        for i in range(20):
            database.add("link", Atom(f"n{i}"), Atom(f"n{i + 1}"))
        service.register("g", PAIR_RULES, database=database)
        expected = service.query("g", "reach")
        results = []
        barrier = threading.Barrier(THREADS)

        def reader():
            barrier.wait()
            for _ in range(25):
                results.append(service.query("g", "reach") == expected)

        threads = [threading.Thread(target=reader) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert len(results) == THREADS * 25
        assert all(results)
