"""The snapshot compactor: chain flattening that changes no answer.

Compaction forces the lazy materialization a reader would perform, so
its whole contract is *observational invisibility*:

* ``rows()`` is identical before and after compaction — including when
  the compaction runs concurrently with readers and writers;
* ``fingerprint`` is stable across compaction (two snapshots built by
  the same delta path hash identically whether or not one of them was
  compacted);
* after a compaction cycle the chain depth is at or below the
  configured cap, and the ``compactions`` / ``compaction_rows``
  counters record the work.

Both delivery modes are covered: compact-on-Nth-publish (in-line in
the write path) and the background ``SnapshotCompactor`` thread.
"""

import threading

import pytest

from repro.datalog.database import Database
from repro.relations import Atom
from repro.service import ModelSnapshot, QueryService, SnapshotCompactor

PROGRAM = "p(X) :- base(X).\n"


def _database(*names):
    database = Database()
    database.declare("base")
    for name in names:
        database.add("base", Atom(name))
    return database


def _chain_snapshot(batches):
    """A snapshot built by stacking ``batches`` delta publishes."""
    snapshot = ModelSnapshot.full({"p": {(Atom("seed"),)}})
    for index, (plus, minus) in enumerate(batches):
        snapshot = snapshot.apply_delta(
            {"p": frozenset(plus)}, {"p": frozenset(minus)}, index + 2
        )
    return snapshot


BATCHES = [
    ({(Atom(f"x{i}"),), (Atom(f"y{i}"),)}, {(Atom(f"y{i - 1}"),)} if i else set())
    for i in range(10)
]


class TestCompactionIsInvisible:
    def test_rows_identical_before_and_after(self):
        plain = _chain_snapshot(BATCHES)
        compacted = _chain_snapshot(BATCHES)
        assert compacted.max_chain_depth() == 10
        cells, rows = compacted.compact(0)
        assert cells == 1 and rows > 0
        assert compacted.max_chain_depth() == 0
        assert compacted.rows("p") == plain.rows("p")
        assert compacted.undefined_rows("p") == plain.undefined_rows("p")

    def test_fingerprint_stable_across_compaction(self):
        plain = _chain_snapshot(BATCHES)
        compacted = _chain_snapshot(BATCHES)
        compacted.compact(0)
        assert compacted.fingerprint == plain.fingerprint

    def test_compaction_respects_the_cap(self):
        snapshot = _chain_snapshot(BATCHES)
        cells, _rows = snapshot.compact(4)
        # The one deep chain flattens entirely: materialization
        # collapses every ancestor, so the depth drops to zero.
        assert cells == 1
        assert snapshot.max_chain_depth() <= 4

    def test_compaction_is_idempotent(self):
        snapshot = _chain_snapshot(BATCHES)
        first = snapshot.compact(0)
        second = snapshot.compact(0)
        assert first[0] == 1
        assert second == (0, 0)

    def test_shallow_chains_are_left_alone(self):
        snapshot = _chain_snapshot(BATCHES[:3])
        assert snapshot.compact(4) == (0, 0)
        assert snapshot.max_chain_depth() == 3


class TestCompactorVsReaders:
    def test_concurrent_compaction_never_changes_an_answer(self):
        """One writer stacks delta publishes, one thread compacts the
        published snapshot flat out, readers pin snapshots and check
        rows() before and after a forced compaction — every answer must
        be one of the models the writer actually published."""
        service = QueryService(compactor="off")
        service.register("v", PROGRAM, database=_database("a"))
        view = service.view("v")

        stop = threading.Event()
        errors = []

        def writer():
            try:
                for i in range(60):
                    service.update(
                        "v", inserts=[("base", (Atom(f"w{i}"),))]
                    )
            except Exception as exc:
                errors.append(f"writer: {type(exc).__name__}: {exc}")
            finally:
                stop.set()

        def compactor():
            try:
                while not stop.is_set():
                    view.maybe_compact()
                    snapshot = view.read_snapshot()
                    if snapshot is not None:
                        snapshot.compact(0)
            except Exception as exc:
                errors.append(f"compactor: {type(exc).__name__}: {exc}")

        def reader():
            try:
                while not stop.is_set():
                    snapshot = view.read_snapshot()
                    if snapshot is None:
                        continue
                    before = snapshot.rows("p")
                    snapshot.compact(0)  # race a compaction on purpose
                    after = snapshot.rows("p")
                    assert before == after, "compaction changed rows()"
                    # Every answer is a prefix-closed model: the seed
                    # plus the first k writer facts for some k.
                    names = {row[0].name for row in after}
                    ws = sorted(
                        int(n[1:]) for n in names if n.startswith("w")
                    )
                    assert ws == list(range(len(ws))), (
                        f"torn model: {sorted(names)}"
                    )
            except Exception as exc:
                errors.append(f"reader: {type(exc).__name__}: {exc}")

        threads = (
            [threading.Thread(target=writer)]
            + [threading.Thread(target=compactor)]
            + [threading.Thread(target=reader) for _ in range(2)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
        # Quiescent check: the final model holds the seed + all facts.
        assert len(service.query("v", "p")) == 61

    def test_pinned_snapshot_fingerprint_stable_under_compaction(self):
        service = QueryService(compactor="off")
        service.register("v", PROGRAM, database=_database("a"))
        for i in range(10):
            service.update("v", inserts=[("base", (Atom(f"f{i}"),))])
        view = service.view("v")
        pinned = view.read_snapshot()
        assert pinned is not None and pinned.max_chain_depth() > 0
        rows_before = pinned.rows("p")
        fingerprint_before = pinned.fingerprint
        assert view.maybe_compact() >= 0
        pinned.compact(0)
        assert pinned.rows("p") == rows_before
        assert pinned.fingerprint == fingerprint_before


class TestOnPublishMode:
    def test_nth_publish_compacts_past_the_cap(self):
        service = QueryService(
            compactor="on-publish", compact_depth=2, compact_interval=4
        )
        service.register("v", PROGRAM, database=_database("a"))
        for i in range(16):
            service.update("v", inserts=[("base", (Atom(f"b{i}"),))])
        stats = service.view("v").stats()
        # The burst crossed four interval boundaries; each compaction
        # cycle flattened the chain back under the cap.
        assert stats["counters"]["compactions"] >= 1
        assert stats["counters"]["compaction_rows"] > 0
        assert stats["chain_depth"] <= 2 + 4  # cap + one interval of growth
        service.view("v").maybe_compact()
        assert service.view("v").chain_depth() <= 2

    def test_off_mode_leaves_chains_to_the_publish_cap(self):
        service = QueryService(compactor="off")
        service.register("v", PROGRAM, database=_database("a"))
        for i in range(10):
            service.update("v", inserts=[("base", (Atom(f"b{i}"),))])
        view = service.view("v")
        assert view.chain_depth() == 10
        assert view.stats()["counters"]["compactions"] == 0


class TestThreadMode:
    def test_background_thread_flattens_a_write_burst(self):
        service = QueryService(compactor="thread", compact_depth=2)
        try:
            service.register("v", PROGRAM, database=_database("a"))
            sweeper = service._background_compactor
            assert isinstance(sweeper, SnapshotCompactor)
            for i in range(20):
                service.update("v", inserts=[("base", (Atom(f"t{i}"),))])
            view = service.view("v")
            # Wait for a sweep that leaves the chain under the cap (the
            # sweeper observes its own pass counter, so no blind sleep).
            target = sweeper.sweeps + 2
            deadline = threading.Event()
            for _ in range(200):
                if sweeper.sweeps >= target and view.chain_depth() <= 2:
                    break
                deadline.wait(0.05)
            assert view.chain_depth() <= 2
            assert service.query("v", "p") == {
                (Atom("a"),), *((Atom(f"t{i}"),) for i in range(20))
            }
        finally:
            service.close()
        # close() is idempotent, detaches the sweeper, and really
        # stops its thread.
        service.close()
        assert service._background_compactor is None
        assert sweeper._thread is None

    def test_manual_sweep_compacts_every_view(self):
        service = QueryService(compactor="off")
        service.register("v1", PROGRAM, database=_database("a"))
        service.register("v2", PROGRAM, database=_database("b"))
        for i in range(10):
            service.update("v1", inserts=[("base", (Atom(f"a{i}"),))])
            service.update("v2", inserts=[("base", (Atom(f"b{i}"),))])
        sweeper = SnapshotCompactor(service)
        compacted = sweeper.sweep()
        assert compacted == 4  # two views x two chained cells (p, base)
        assert service.view("v1").chain_depth() <= 4
        assert service.view("v2").chain_depth() <= 4
        assert sweeper.sweeps == 1
