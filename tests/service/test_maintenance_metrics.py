"""Observability of the delta-stream maintenance plane (PR 8).

Metamorphic checks over the new surface: the ``maintenance`` mode and
``update_queue_depth`` gauge in the service snapshot and the Prometheus
exposition, and the circuit accounting identity that ties the three
write-path counters together —

    ``delta_batches_coalesced == update_batches - circuit_steps``

for any pure-incremental dbsp history (every circuit pass absorbs its
batch count minus one as coalescing), with both sides zero for the
legacy engine.  The rollup invariant — retired + live is monotone —
must keep holding now that bursts bump counters in multi-batch strides
and views carry the new counters across churn.
"""

import random
import threading

import pytest

from repro.relations import Atom
from repro.service import QueryService, render_prometheus

TC = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
)
NODES = [Atom(f"n{i}") for i in range(5)]


def _random_batches(rng, count):
    pool = [(x, y) for x in NODES for y in NODES]
    batches = []
    for _ in range(count):
        rows = rng.sample(pool, rng.randint(1, 3))
        batches.append(
            (
                [("edge", row) for row in rows],
                [("edge", rng.choice(pool))],
            )
        )
    return batches


class TestMaintenanceSurface:
    def test_snapshot_reports_mode_queue_and_coalesce(self):
        for maintenance, coalesce in (("dbsp", 64), ("legacy", 1)):
            service = QueryService(maintenance=maintenance)
            try:
                service.register("v", TC)
                snapshot = service.metrics_snapshot()
                assert snapshot["maintenance"] == maintenance
                assert snapshot["coalesce"] == coalesce
                assert snapshot["gauges"]["update_queue_depth"] == {"v": 0}
                assert snapshot["views"]["v"]["maintenance"] == maintenance
                assert snapshot["views"]["v"]["queue_depth"] == 0
            finally:
                service.close()

    def test_recompute_views_report_no_maintenance_engine(self):
        service = QueryService()
        try:
            service.register("v", TC, incremental=False)
            assert service.stats("v")["maintenance"] is None
        finally:
            service.close()

    def test_queue_depth_gauge_renders_in_prometheus(self):
        service = QueryService()
        try:
            service.register("v", TC)
            service.update("v", inserts=[("edge", (NODES[0], NODES[1]))])
            text = render_prometheus(service.metrics_snapshot())
            assert 'repro_update_queue_depth{view="v"} 0' in text
            # The circuit counters ride the per-view counter rollup.
            assert "repro_circuit_steps" in text
            assert "repro_delta_batches_coalesced" in text
        finally:
            service.close()


class TestCircuitAccounting:
    @pytest.mark.parametrize("seed", range(3))
    def test_coalesced_equals_batches_minus_steps(self, seed):
        """Every dbsp circuit pass absorbs (batches - 1) as coalescing."""
        rng = random.Random(f"accounting-{seed}")
        service = QueryService(maintenance="dbsp")
        try:
            service.register("v", TC)
            view = service.view("v")
            for _ in range(6):
                burst = _random_batches(rng, rng.randint(1, 5))
                view.apply_stream(burst)
            counters = view.metrics.counters
            assert counters["recompute_fallbacks"] == 0
            assert counters["recompute_batches"] == 0
            assert counters["circuit_steps"] > 0
            assert counters["delta_batches_coalesced"] == (
                counters["update_batches"] - counters["circuit_steps"]
            )
            assert counters["incremental_batches"] == (
                counters["update_batches"]
            )
        finally:
            service.close()

    def test_legacy_engine_never_bumps_circuit_counters(self):
        rng = random.Random("accounting-legacy")
        service = QueryService(maintenance="legacy")
        try:
            service.register("v", TC)
            view = service.view("v")
            view.apply_stream(_random_batches(rng, 4))
            service.update("v", inserts=[("edge", (NODES[2], NODES[3]))])
            counters = view.metrics.counters
            assert counters["update_batches"] == 5
            assert counters["circuit_steps"] == 0
            assert counters["delta_batches_coalesced"] == 0
        finally:
            service.close()

    def test_group_commit_accounting_from_racing_writers(self):
        """The identity survives the real queue: whatever the leaders
        coalesced, batches split exactly into steps + coalesced."""
        service = QueryService(maintenance="dbsp", coalesce=8)
        try:
            service.register("v", TC)
            total = 24

            def writer(offset):
                for i in range(total // 4):
                    service.update(
                        "v",
                        inserts=[
                            ("edge", (Atom(f"w{offset}"), Atom(f"x{i}")))
                        ],
                    )

            threads = [
                threading.Thread(target=writer, args=(w,)) for w in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            counters = service.view("v").metrics.counters
            assert counters["update_batches"] == total
            assert counters["delta_batches_coalesced"] == (
                counters["update_batches"] - counters["circuit_steps"]
            )
            assert 1 <= counters["circuit_steps"] <= total
        finally:
            service.close()


class TestRollupUnderCoalescedChurn:
    def test_rollup_monotone_across_bursts_and_view_churn(self):
        """retired + live never decreases while bursts land and views
        are replaced — including the new circuit counters."""
        rng = random.Random("rollup-churn")
        service = QueryService(maintenance="dbsp")
        try:
            watched = (
                "update_batches",
                "circuit_steps",
                "delta_batches_coalesced",
                "snapshot_swaps",
            )
            previous = {name: 0 for name in watched}
            service.register("v", TC)
            for round_number in range(6):
                view = service.view("v")
                view.apply_stream(_random_batches(rng, rng.randint(2, 4)))
                if round_number % 2 == 1:
                    # Churn: replacement absorbs the old view's counters
                    # into the retired rollup.
                    service.register("v", TC)
                rollup = service.metrics_snapshot()["rollup"]
                for name in watched:
                    assert rollup.get(name, 0) >= previous[name], (
                        f"rollup counter {name} went backwards in "
                        f"round {round_number}"
                    )
                    previous[name] = rollup.get(name, 0)
            assert previous["circuit_steps"] > 0
            assert previous["delta_batches_coalesced"] > 0
        finally:
            service.close()
