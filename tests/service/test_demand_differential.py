"""S4: differential testing of demand-driven answers.

For every binding pattern, the demand path (magic rewrite + seeded
incremental entry) must return exactly the rows of the fully
materialized oracle that match the pattern — across semantics, across
both base maintenance engines, through seeded random edit sequences,
for empty-seed constants (no matching rows at all), and on recursive
components with stratified negation.  The oracle is ``query_state`` on
the same service: the fully materialized base view, maintained through
a completely separate code path from the demand entries.
"""

import random

import pytest

from repro.relations import Atom
from repro.service import QueryService

PROGRAM = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
unreach(X, Y) :- node(X), node(Y), not tc(X, Y).
"""

NODES = [Atom(f"n{i}") for i in range(7)]
#: A constant that never appears in any fact — the empty-seed pattern.
GHOST = Atom("ghost")


def matches(row, pattern):
    return all(
        want is None or got == want for got, want in zip(row, pattern)
    )


def check_pattern(service, predicate, pattern):
    oracle_rows, oracle_undef, _ = service.query_state("demo", predicate)
    rows, undefined, _ = service.query_pattern("demo", predicate, pattern)
    expected = {r for r in oracle_rows if matches(r, pattern)}
    assert rows == expected, (
        f"{predicate}{pattern}: demand={sorted(map(str, rows))} "
        f"oracle={sorted(map(str, expected))}"
    )
    # Stratified-class semantics are total here; the demand path never
    # reports undefined rows and the oracle must not either.
    assert undefined <= {
        r for r in oracle_undef if matches(r, pattern)
    }


def patterns_for(rng):
    x, y = rng.choice(NODES), rng.choice(NODES)
    return [
        (x, None),
        (None, y),
        (x, y),
        (None, None),
        (GHOST, None),     # empty magic seed: no rows may leak
        (GHOST, y),
    ]


def seed_facts(service):
    for node in NODES:
        service.insert("demo", "node", node)
    for i in range(len(NODES) - 1):
        service.insert("demo", "edge", NODES[i], NODES[i + 1])


def run_differential(service, seed, steps=8):
    rng = random.Random(seed)
    seed_facts(service)
    edges = {(NODES[i], NODES[i + 1]) for i in range(len(NODES) - 1)}
    for _ in range(steps):
        if edges and rng.random() < 0.4:
            edge = rng.choice(sorted(edges, key=str))
            edges.discard(edge)
            service.delete("demo", "edge", *edge)
        else:
            edge = (rng.choice(NODES), rng.choice(NODES))
            edges.add(edge)
            service.insert("demo", "edge", *edge)
        for pattern in patterns_for(rng):
            check_pattern(service, "tc", pattern)
            check_pattern(service, "unreach", pattern)


@pytest.mark.parametrize("maintenance", ["dbsp", "legacy"])
def test_differential_stratified_both_engines(maintenance):
    service = QueryService(maintenance=maintenance)
    try:
        service.register("demo", PROGRAM)
        run_differential(service, seed=11)
        counters = service.metrics_snapshot()["counters"]
        # The bound patterns were served demand-driven, not by fallback.
        assert counters["demand_registrations"] > 0
        assert counters["demand_fallbacks"] == 0
    finally:
        service.close()


@pytest.mark.parametrize("semantics", ["wellfounded", "valid"])
def test_differential_alternate_semantics(semantics):
    # On stratified programs the well-founded and valid semantics agree
    # with the stratified least model, so demand entries (evaluated
    # stratified) must still match the oracle exactly.
    service = QueryService()
    try:
        service.register("demo", PROGRAM, semantics=semantics)
        run_differential(service, seed=23, steps=5)
    finally:
        service.close()


def test_differential_inflationary_falls_back():
    # Inflationary semantics is outside the demand envelope; patterns
    # must still answer correctly (by filtering the full view).
    service = QueryService()
    try:
        service.register("demo", PROGRAM, semantics="inflationary")
        run_differential(service, seed=31, steps=4)
        counters = service.metrics_snapshot()["counters"]
        assert counters["demand_registrations"] == 0
        assert counters["demand_fallbacks"] > 0
    finally:
        service.close()


def test_differential_annotated_views_fall_back():
    # Annotated views sit outside the demand envelope — the magic
    # rewrite is support-level and would drop annotations — so every
    # bound pattern must answer by filtering the full annotated model,
    # never by building a demand entry.
    service = QueryService(semiring="tropical")
    try:
        service.register("demo", PROGRAM)
        run_differential(service, seed=61, steps=4)
        counters = service.metrics_snapshot()["counters"]
        assert counters["demand_registrations"] == 0
        assert counters["demand_fallbacks"] > 0
    finally:
        service.close()


def test_differential_group_commit_write_path():
    # coalesce > 1 routes every edit through the ticket queue and the
    # leader's drain loop — the propagation path the burst applies use.
    service = QueryService(coalesce=4)
    try:
        service.register("demo", PROGRAM)
        run_differential(service, seed=47, steps=6)
    finally:
        service.close()


def test_differential_same_generation_recursion():
    # A nonlinear recursive component (the classic same-generation
    # program): demanded cones overlap and grow transitively.
    program = """
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
    """
    people = [Atom(f"p{i}") for i in range(8)]
    parents = [(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6), (6, 7)]
    service = QueryService()
    try:
        service.register("demo", program)
        for person in people:
            service.insert("demo", "person", person)
        for child, parent in parents:
            service.insert("demo", "par", people[child], people[parent])
        rng = random.Random(5)
        for _ in range(6):
            child, parent = rng.choice(parents)
            if rng.random() < 0.5:
                service.delete("demo", "par", people[child], people[parent])
            else:
                service.insert("demo", "par", people[child], people[parent])
            for bound in (people[0], people[3], GHOST):
                oracle, _, _ = service.query_state("demo", "sg")
                rows, _, _ = service.query_pattern("demo", "sg", (bound, None))
                assert rows == {r for r in oracle if r[0] == bound}
    finally:
        service.close()
