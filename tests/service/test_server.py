"""The query service facade and its line protocol."""

import json
import socket
import threading

import pytest

from repro.relations import Atom
from repro.service import QueryService, parse_fact, serve_stream, serve_unix_socket

a, b, c, d = (Atom(x) for x in "abcd")

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
edge(b, c).
"""

WIN = """
win(X) :- move(X, Y), not win(Y).
move(a, b).
move(b, c).
move(d, d).
"""


def run_protocol(service, script):
    replies = []
    serve_stream(service, script.splitlines(), replies.append)
    return replies


class TestParseFact:
    def test_accepts_with_and_without_dot(self):
        assert parse_fact("edge(a, b)") == ("edge", (a, b))
        assert parse_fact("edge(a, b).") == ("edge", (a, b))

    def test_rejects_rules_and_nonground(self):
        with pytest.raises(ValueError):
            parse_fact("tc(X, Y) :- edge(X, Y)")
        with pytest.raises(Exception):
            parse_fact("edge(X, b)")


class TestQueryService:
    def test_register_query_update(self):
        service = QueryService()
        info = service.register("tc", TC)
        assert info["mode"] == "incremental" and info["stratified"]
        assert service.query("tc", "tc") == {(a, b), (b, c), (a, c)}
        service.insert("tc", "edge", c, d)
        assert (a, d) in service.query("tc", "tc")
        service.delete("tc", "edge", a, b)
        assert service.query("tc", "tc") == {(b, c), (c, d), (b, d)}

    def test_cache_hits_and_invalidation(self):
        service = QueryService()
        service.register("tc", TC)
        service.query("tc", "tc")
        service.query("tc", "tc")
        stats = service.stats("tc")
        assert stats["counters"]["cache_hits"] == 1
        assert stats["counters"]["cache_misses"] == 1
        service.insert("tc", "edge", c, d)  # invalidates the scope
        service.query("tc", "tc")
        assert service.stats("tc")["counters"]["cache_misses"] == 2

    def test_unknown_view_raises(self):
        service = QueryService()
        with pytest.raises(KeyError):
            service.query("nope", "p")

    def test_service_wide_stats(self):
        service = QueryService()
        service.register("tc", TC)
        service.register("win", WIN, semantics="valid")
        stats = service.stats()
        assert set(stats["views"]) == {"tc", "win"}
        assert stats["views"]["win"]["mode"] == "recompute"
        assert "cache" in stats


class TestLineProtocol:
    def test_register_query_update_stats_roundtrip(self, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(TC)
        service = QueryService()
        replies = run_protocol(
            service,
            f"""
            register tc stratified {program}

            # comments and blank lines are skipped
            query tc tc
            +tc edge(c, d)
            query tc tc
            -tc edge(a, b)
            query tc tc
            stats tc
            quit
            """,
        )
        assert replies[0].startswith("ok {")
        first_query = replies[1:5]
        assert first_query == [
            "row tc(a, b)",
            "row tc(a, c)",
            "row tc(b, c)",
            "ok 3 rows",
        ]
        assert replies[5].startswith("ok {")  # the insert summary
        assert "row tc(a, d)" in replies
        final_rows = [r for r in replies if r == "row tc(b, d)"]
        assert final_rows  # closure after the deletion
        stats_line = next(r for r in replies if '"counters"' in r)
        payload = json.loads(stats_line[len("ok ") :])
        assert payload["mode"] == "incremental"
        assert payload["counters"]["update_batches"] == 2
        assert replies[-1] == "ok bye"

    def test_inline_register_and_views_listing(self):
        service = QueryService()
        replies = run_protocol(
            service,
            'register tc stratified tc(X, Y) :- edge(X, Y). edge(a, b).\nviews\n',
        )
        assert replies[0].startswith("ok {")
        assert replies[1] == 'ok ["tc"]'

    def test_nonstratified_fallback_visible_in_metrics(self):
        service = QueryService()
        replies = run_protocol(
            service,
            f"register win valid {' '.join(WIN.split())}\n"
            "query win win\n"
            "-win move(a, b)\n"
            "query win win\n"
            "stats win\n",
        )
        info = json.loads(replies[0][len("ok ") :])
        assert info["mode"] == "recompute" and not info["stratified"]
        assert "undef win(d)" in replies
        stats_line = replies[-1]
        payload = json.loads(stats_line[len("ok ") :])
        assert payload["counters"]["recompute_batches"] == 1
        assert payload["counters"]["recompute_fallbacks"] == 0

    def test_errors_do_not_kill_the_stream(self):
        service = QueryService()
        replies = run_protocol(
            service,
            "query missing p\n"
            "frobnicate\n"
            "register tc bogus-semantics tc(X) :- e(X).\n"
            "+tc not a fact at all\n"
            "register tc stratified tc(X) :- e(X). e(a).\n"
            "query tc tc\n",
        )
        assert replies[0].startswith("error KeyError")
        assert replies[1] == "error unknown command 'frobnicate'"
        assert replies[2].startswith("error unknown semantics")
        assert replies[3].startswith("error")
        assert replies[-1] == "ok 1 rows"
        assert "row tc(a)" in replies

    def test_usage_errors(self):
        service = QueryService()
        replies = run_protocol(
            service, "register tc stratified\nquery tc\n+tc\nunregister\n"
        )
        assert all(reply.startswith("error usage:") for reply in replies)

    def test_unregister_verb(self):
        service = QueryService()
        replies = run_protocol(
            service,
            "register tc stratified tc(X) :- e(X). e(a).\n"
            "unregister tc\n"
            "views\n"
            "query tc tc\n"
            "unregister tc\n",
        )
        info = json.loads(replies[1][len("ok ") :])
        assert info["name"] == "tc" and info["facts"] == 1
        assert replies[2] == "ok []"
        assert replies[3].startswith("error KeyError")
        assert replies[4].startswith("error KeyError")

    def test_metrics_verb_snapshot(self):
        service = QueryService()
        replies = run_protocol(
            service,
            "register tc stratified tc(X) :- e(X). e(a).\n"
            "query tc tc\n"
            "query tc tc\n"
            "+tc e(b)\n"
            "metrics\n",
        )
        payload = json.loads(replies[-1][len("ok ") :])
        assert payload["counters"]["requests_total"] == 5
        assert payload["counters"]["queries_total"] == 2
        assert payload["counters"]["updates_total"] == 1
        assert payload["gauges"]["views_registered"] == 1
        assert payload["gauges"]["stale_views"] == 0
        assert payload["lock_mode"] == "view"
        assert payload["read_mode"] == "snapshot"
        # Queries are lock-free (served from the published snapshot);
        # only the update batch takes the view lock.
        assert payload["counters"]["lock_acquisitions"] == 1
        assert payload["rollup"]["snapshot_reads"] == 2
        # Registration publishes once, the update batch republishes.
        assert payload["rollup"]["snapshot_swaps"] == 2
        assert payload["gauges"]["snapshot_age"]["tc"] >= 0
        assert payload["locks"]["wait"]["count"] == payload["counters"][
            "lock_acquisitions"
        ]
        # The rollup equals retired + the sum of the live view counters.
        for counter, value in payload["rollup"].items():
            live = sum(
                stats["counters"].get(counter, 0)
                for stats in payload["views"].values()
            )
            assert value == payload["retired"].get(counter, 0) + live

    def test_stale_flag_surfaces_on_query_reply(self):
        from repro.robustness import FaultInjector, FaultRule, inject_faults

        service = QueryService()
        service.register("tc", TC)
        plan = [
            FaultRule("incremental.apply", times=None),
            FaultRule("incremental.initialize", times=None),
        ]
        with inject_faults(FaultInjector(plan)):
            replies = run_protocol(
                service, "+tc edge(c, d)\nquery tc tc\n"
            )
        assert replies[0].startswith("error ")
        assert replies[-1].endswith("rows stale")


class TestUnixSocket:
    def test_round_trip_over_socket(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        service = QueryService()
        service.register("tc", TC)
        server = threading.Thread(
            target=serve_unix_socket,
            args=(service, path),
            kwargs={"max_connections": 1},
        )
        server.start()
        try:
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            for _ in range(100):
                try:
                    client.connect(path)
                    break
                except (FileNotFoundError, ConnectionRefusedError):
                    import time

                    time.sleep(0.01)
            with client:
                client.sendall(b"query tc tc\nquit\n")
                reader = client.makefile("r")
                lines = [reader.readline().strip() for _ in range(5)]
            assert lines[:3] == [
                "row tc(a, b)",
                "row tc(a, c)",
                "row tc(b, c)",
            ]
            assert lines[3] == "ok 3 rows"
            assert lines[4] == "ok bye"
        finally:
            server.join(timeout=5)
        assert not server.is_alive()


class TestCloseIdempotent:
    """Regression: double close used to stop the compactor twice."""

    def test_close_twice_with_thread_compactor(self):
        service = QueryService(compactor="thread")
        service.register("tc", TC)
        compactor = service._background_compactor
        assert compactor is not None
        service.close()
        assert service._background_compactor is None
        service.close()  # second close finds nothing left to do
        alive = compactor._thread is not None and compactor._thread.is_alive()
        assert not alive

    def test_close_twice_without_compactor(self):
        service = QueryService()  # on-publish mode: no thread
        service.close()
        service.close()

    def test_close_after_failed_construction(self):
        # A service whose __init__ died before the compactor attribute
        # existed must still close cleanly.
        service = QueryService.__new__(QueryService)
        service.close()

    def test_service_still_answers_after_close(self):
        service = QueryService(compactor="thread")
        service.register("tc", TC)
        service.close()
        rows = {str(row) for row in service.query("tc", "tc")}
        assert "(a, c)" in rows
        service.close()
