"""Mid-flight differential fuzzing with a legal-version-set oracle.

The quiescent differential suite (``test_differential_reads``) checks
answers between operations; this one checks answers **during** them —
and, since PR 8, during *group-committed* ones: several writer threads
race the same view, the update queue's leader absorbs whole bursts into
single publishes, so a reader can observe states no single writer ever
submitted.  The classic "replay the writer's log" oracle breaks there;
what replaces it is a **legal version set**:

* every batch writer ``w`` submits carries a unique, never-deleted
  ``seq`` marker fact, so any published snapshot *names* exactly the
  set of batches it includes;
* writers own disjoint row slices (batches of different writers
  commute), so a state is **legal** iff each writer's included batches
  form a prefix of that writer's submit order — the FIFO queue can
  coalesce, but it can never reorder or skip;
* the oracle recomputes the model of that prefix vector from scratch
  (:func:`repro.datalog.engine.run`) and every row a reader saw —
  certainly-true and undefined, plus the markers themselves, all drawn
  from one immutable snapshot — must match it exactly;
* across ascending generations the prefix vector must be monotone
  (coordinate-wise non-decreasing): the linearization check that
  group commit only ever moves the published state *forward* along
  the acked-batch order.

Any torn publish (rows mixing two generations), stranded ticket
(a batch acked but never published, or published out of order), or
maintenance bug under coalescing shows up as a mismatch.  The whole
harness runs under both maintenance engines (``dbsp`` and ``legacy``)
with the group-commit queue active.
"""

import os
import random
import threading

import pytest

pytestmark = pytest.mark.slow

from repro.datalog.database import Database
from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.service import QueryService

TC = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
    "seen(I) :- seq(I).\n"
)
WIN = (
    "win(X) :- move(X, Y), not win(Y).\n"
    "seen(I) :- seq(I).\n"
)

#: (config id, program, semantics, query predicate, update predicate,
#:  maintenance mode, semiring) — both engines, with the group-commit
#: queue on.  The tropical config runs the annotated engine under the
#: same concurrent writers: it is idempotent, so its *support* equals
#: the boolean least model and the prefix-replay oracle still applies
#: (annotated updates bypass the coalescing queue by design, which is
#: exactly the routing this config pins down under contention).
CONFIGS = [
    ("stratified-dbsp", TC, "stratified", "tc", "edge", "dbsp", "bool"),
    ("stratified-legacy", TC, "stratified", "tc", "edge", "legacy", "bool"),
    ("wellfounded-dbsp", WIN, "wellfounded", "win", "move", "dbsp", "bool"),
    ("wellfounded-legacy", WIN, "wellfounded", "win", "move", "legacy", "bool"),
    ("tropical-annotated", TC, "stratified", "tc", "edge", "dbsp", "tropical"),
]

NODES = [Atom(f"n{i}") for i in range(6)]
WRITERS = 3
BATCHES_PER_WRITER = 10
READERS = 3
#: Seeds per config; REPRO_BENCH_SCALE=smoke shrinks the matrix (the
#: repo-wide seeded-suite convention, see pyproject markers).
SEEDS = 2 if os.environ.get("REPRO_BENCH_SCALE") == "smoke" else 5

_PARSED = {TC: parse_program(TC), WIN: parse_program(WIN)}

#: Deterministic base facts, registered before any writer starts (the
#: prefix-vector (0, …, 0) state).
_BASE_ROWS = [(NODES[0], NODES[1]), (NODES[1], NODES[0])]


def _slice_nodes(writer):
    """Writer ``writer``'s exclusive first-coordinate nodes."""
    return [node for i, node in enumerate(NODES) if i % WRITERS == writer]


def _make_schedules(rng, predicate):
    """Per-writer batch lists: a unique ``seq`` marker plus 1–3
    mutations whose rows stay inside the writer's own slice (so batches
    of different writers commute and only submit order matters)."""
    schedules = []
    for writer in range(WRITERS):
        owned = _slice_nodes(writer)
        inserted = [
            row for row in _BASE_ROWS if row[0] in owned
        ]  # base rows this writer may legally delete
        batches = []
        for index in range(BATCHES_PER_WRITER):
            marker = (Atom(f"w{writer}b{index}"),)
            inserts = [("seq", marker)]
            deletes = []
            for _ in range(rng.randint(1, 3)):
                if inserted and rng.random() < 0.35:
                    deletes.append((predicate, rng.choice(inserted)))
                else:
                    row = (rng.choice(owned), rng.choice(NODES))
                    inserts.append((predicate, row))
                    inserted.append(row)
            batches.append((inserts, deletes))
        schedules.append(batches)
    return schedules


def _replay(schedules, prefix, predicate):
    """The database after the base facts plus each writer's first
    ``prefix[w]`` batches (writer order is immaterial — disjoint
    slices — and within a writer the submit order is replayed)."""
    database = Database()
    database.declare("seq")
    for row in _BASE_ROWS:
        database.add(predicate, *row)
    for writer, count in enumerate(prefix):
        for inserts, deletes in schedules[writer][:count]:
            # Deletes before inserts, matching the engines' batch order.
            for pred, row in deletes:
                if database.holds(pred, *row):
                    database.remove(pred, *row)
            for pred, row in inserts:
                if not database.holds(pred, *row):
                    database.add(pred, *row)
    return database


def _prefix_of(markers, config_id, seed):
    """Decode a snapshot's marker rows into a prefix vector, asserting
    prefix-closedness (the FIFO queue must never skip a batch)."""
    included = [set() for _ in range(WRITERS)]
    for (marker,) in markers:
        text = marker.name  # "w<writer>b<index>"
        writer, index = text[1:].split("b")
        included[int(writer)].add(int(index))
    prefix = []
    for writer, indices in enumerate(included):
        assert indices == set(range(len(indices))), (
            f"writer {writer}'s included batches {sorted(indices)} are "
            f"not a prefix under {config_id} (seed {seed}) — the queue "
            f"skipped or reordered a batch"
        )
        prefix.append(len(indices))
    return tuple(prefix)


def _reader_loop(service, name, view, query_predicate, stop, observations):
    """Record (generation, true, undefined, markers) per new generation
    — all four drawn from one immutable snapshot."""
    seen = set()
    while not stop.is_set():
        # Recompute disciplines publish lazily on the next read; the
        # query_state call forces the publish the wait-free snapshot
        # read below then observes.
        service.query_state(name, query_predicate)
        snapshot = view.read_snapshot()
        if snapshot is None:
            continue
        if snapshot.generation not in seen:
            seen.add(snapshot.generation)
            observations.append(
                (
                    snapshot.generation,
                    snapshot.rows(query_predicate),
                    snapshot.undefined_rows(query_predicate),
                    snapshot.rows("seq"),
                )
            )


@pytest.mark.parametrize(
    "config", CONFIGS, ids=[config[0] for config in CONFIGS]
)
@pytest.mark.parametrize("seed", range(SEEDS))
def test_midflight_answers_form_a_monotone_legal_version_chain(config, seed):
    config_id, program, semantics, query_predicate, update_predicate, (
        maintenance
    ), semiring = config
    rng = random.Random(f"{config_id}-midflight-{seed}")
    schedules = _make_schedules(rng, update_predicate)
    service = QueryService(maintenance=maintenance, coalesce=8)
    try:
        name = "mid"
        base = Database()
        base.declare("seq")
        for row in _BASE_ROWS:
            base.add(update_predicate, *row)
        service.register(
            name, program, semantics=semantics, database=base,
            semiring=semiring,
        )
        view = service.view(name)

        observations = [[] for _ in range(READERS)]
        failures = []
        stop = threading.Event()
        readers = [
            threading.Thread(
                target=_reader_loop,
                args=(
                    service, name, view, query_predicate, stop,
                    observations[i],
                ),
            )
            for i in range(READERS)
        ]

        def writer_loop(batches):
            try:
                for inserts, deletes in batches:
                    service.update(name, inserts=inserts, deletes=deletes)
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        writers = [
            threading.Thread(target=writer_loop, args=(schedule,))
            for schedule in schedules
        ]
        for thread in readers:
            thread.start()
        try:
            for thread in writers:
                thread.start()
            for thread in writers:
                thread.join(timeout=120)
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=60)
        assert not failures, failures
        assert not any(t.is_alive() for t in readers + writers)

        # The quiescent endpoint is itself an observation: every acked
        # batch must be visible once the writers drain.
        service.query_state(name, query_predicate)  # force lazy publish
        final = view.read_snapshot()
        merged = [obs for reader in observations for obs in reader] + [
            (
                final.generation,
                final.rows(query_predicate),
                final.undefined_rows(query_predicate),
                final.rows("seq"),
            )
        ]

        # (a) Same generation ⇒ same answer, whoever read it.
        by_generation = {}
        for generation, rows, undefined, markers in merged:
            answer = (rows, undefined, markers)
            assert by_generation.setdefault(generation, answer) == answer, (
                f"two readers disagree on generation {generation} under "
                f"{config_id} (seed {seed}) — a torn publish"
            )

        # (b) Per reader, generations never run backwards.
        for recorded in observations:
            generations = [generation for generation, *_ in recorded]
            assert generations == sorted(generations)

        # (c) Every observed state is a legal version, and the chain of
        # prefix vectors is monotone in generation order.
        oracle_cache = {}
        previous_prefix = (0,) * WRITERS
        for generation in sorted(by_generation):
            rows, undefined, markers = by_generation[generation]
            prefix = _prefix_of(markers, config_id, seed)
            assert all(
                new >= old for new, old in zip(prefix, previous_prefix)
            ), (
                f"generation {generation} rolled writer progress back "
                f"from {previous_prefix} to {prefix} under {config_id} "
                f"(seed {seed})"
            )
            previous_prefix = prefix
            if prefix not in oracle_cache:
                oracle_cache[prefix] = run(
                    _PARSED[program],
                    _replay(schedules, prefix, update_predicate),
                    semantics=semantics,
                )
            oracle = oracle_cache[prefix]
            assert rows == oracle.true_rows(query_predicate), (
                f"true-row mismatch at generation {generation} "
                f"(prefix {prefix}) under {config_id} (seed {seed})"
            )
            assert undefined == oracle.undefined_rows(query_predicate), (
                f"undefined-row mismatch at generation {generation} "
                f"(prefix {prefix}) under {config_id} (seed {seed})"
            )

        # (d) The writers finished, so the final prefix is complete.
        assert previous_prefix == (BATCHES_PER_WRITER,) * WRITERS

        # (e) The race actually happened: readers sampled more than the
        # endpoint states.
        assert len(by_generation) >= 2, (
            "readers never caught a mid-flight state"
        )
    finally:
        service.close()
