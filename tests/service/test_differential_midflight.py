"""Mid-flight differential fuzzing: every concurrently-read answer is
checked against the model *at the generation it was read*.

The quiescent differential suite (``test_differential_reads``) checks
answers between operations; this one checks answers **during** them.
One writer thread drives a seeded schedule of insert/delete batches
against a view and records, after each batch, the published generation
together with a copy of the database that produced it.  Reader threads
race the writer, grabbing the published :class:`ModelSnapshot`
(wait-free, immutable) and recording ``(generation, answer)`` pairs.

After the schedule drains, the oracle — a from-scratch
:func:`repro.datalog.engine.run` over the recorded database copy —
verifies every answer any reader observed against the model at exactly
that generation.  A reader holding a stale snapshot is *correct* as
long as its answer matches the generation it claims; what this suite
would catch is a torn publish: a snapshot whose rows mix two
generations, or a generation the writer never produced.
"""

import random
import threading
import time

import pytest

from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.service import QueryService

TC = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
)
WIN = "win(X) :- move(X, Y), not win(Y).\n"

#: (config id, program, semantics, query predicate, update predicate)
CONFIGS = [
    ("stratified-incremental", TC, "stratified", "tc", "edge"),
    ("wellfounded", WIN, "wellfounded", "win", "move"),
]

NODES = [Atom(f"n{i}") for i in range(5)]
BATCHES = 30
READERS = 3
SEEDS = 8

_PARSED = {TC: parse_program(TC), WIN: parse_program(WIN)}


def _random_row(rng):
    return (rng.choice(NODES), rng.choice(NODES))


def _writer_schedule(
    service, view, name, predicate, query_predicate, rng, recorded
):
    """Apply seeded batches; record generation -> database copy."""

    def checkpoint():
        # Recompute disciplines publish lazily on the next read, so
        # force the publish before recording the generation.  Single
        # writer: the published generation then corresponds exactly to
        # the current database.
        service.query_state(name, query_predicate)
        recorded[view.snapshot_generation()] = (
            service.view(name).database.copy()
        )

    checkpoint()
    for _ in range(BATCHES):
        batch = [_random_row(rng) for _ in range(rng.randint(1, 3))]
        if rng.random() < 0.35:
            existing = list(service.view(name).database.rows(predicate))
            if existing:
                batch.append(rng.choice(existing))
            service.update(
                name, deletes=[(predicate, row) for row in batch]
            )
        else:
            service.update(
                name, inserts=[(predicate, row) for row in batch]
            )
        checkpoint()
        time.sleep(0.001)


def _reader_loop(view, query_predicate, stop, observations):
    """Record (generation, true rows, undefined rows) triples."""
    seen = set()
    while not stop.is_set():
        snapshot = view.read_snapshot()
        if snapshot is None:
            continue
        if snapshot.generation not in seen:
            seen.add(snapshot.generation)
            observations.append(
                (
                    snapshot.generation,
                    snapshot.rows(query_predicate),
                    snapshot.undefined_rows(query_predicate),
                )
            )


@pytest.mark.parametrize(
    "config", CONFIGS, ids=[config[0] for config in CONFIGS]
)
@pytest.mark.parametrize("seed", range(SEEDS))
def test_midflight_answers_match_generation_model(config, seed):
    config_id, program, semantics, query_predicate, update_predicate = (
        config
    )
    rng = random.Random(f"{config_id}-midflight-{seed}")
    service = QueryService()
    try:
        name = "mid"
        service.register(name, program, semantics=semantics)
        service.update(
            name,
            inserts=[
                (update_predicate, _random_row(rng)) for _ in range(3)
            ],
        )
        view = service.view(name)

        recorded = {}
        observations = [[] for _ in range(READERS)]
        stop = threading.Event()
        readers = [
            threading.Thread(
                target=_reader_loop,
                args=(view, query_predicate, stop, observations[i]),
            )
            for i in range(READERS)
        ]
        for thread in readers:
            thread.start()
        try:
            _writer_schedule(
                service,
                view,
                name,
                update_predicate,
                query_predicate,
                rng,
                recorded,
            )
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in readers)

        # Oracle pass: every observed generation must be one the writer
        # published, and the answer must match the from-scratch model
        # of the database at that generation.
        oracle_cache = {}
        distinct = set()
        for observed in observations:
            for generation, rows, undefined in observed:
                assert generation in recorded, (
                    f"reader observed generation {generation} the "
                    f"writer never published"
                )
                distinct.add(generation)
                if generation not in oracle_cache:
                    oracle_cache[generation] = run(
                        _PARSED[program],
                        recorded[generation],
                        semantics=semantics,
                    )
                oracle = oracle_cache[generation]
                assert rows == oracle.true_rows(query_predicate), (
                    f"true-row mismatch at generation {generation} "
                    f"under {config_id} (seed {seed})"
                )
                assert undefined == oracle.undefined_rows(
                    query_predicate
                ), (
                    f"undefined-row mismatch at generation "
                    f"{generation} under {config_id} (seed {seed})"
                )
        # The race actually happened: readers sampled more than the
        # final quiescent state.
        assert len(distinct) >= 2, "readers never caught a mid-flight state"
    finally:
        service.close()
