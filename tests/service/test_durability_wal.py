"""Unit tests for the durability primitives: WAL segments, framing,
rotation/pruning, the checkpoint store, and the manager's cold-start
scan."""

import json
import os
import zlib

import pytest

from repro.robustness import RecoveryError
from repro.service.durability import (
    CheckpointStore,
    DataDirLocked,
    DurabilityManager,
    WriteAheadLog,
    scan_segment,
    truncate_segment,
)
from repro.service.durability.wal import (
    _HEADER,
    encode_record,
    segment_files,
)


def _ops(n):
    return [{"op": "update", "view": "v", "n": i} for i in range(n)]


class TestWalAppendScan:
    def test_append_then_scan_roundtrip(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        lsns = [log.append(op) for op in _ops(5)]
        log.close()
        assert lsns == [1, 2, 3, 4, 5]
        (segment,) = segment_files(tmp_path)
        records, clean_end, torn = scan_segment(segment)
        assert torn == 0
        assert clean_end == segment.stat().st_size
        assert [r.lsn for r in records] == lsns
        assert records[3].operation == {"op": "update", "view": "v", "n": 3}

    def test_lsn_continues_across_reopen(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        log.append({"op": "a"})
        log.close()
        log = WriteAheadLog(tmp_path, fsync="off", next_lsn=2)
        assert log.append({"op": "b"}) == 2
        log.close()
        records = [
            record
            for segment in segment_files(tmp_path)
            for record in scan_segment(segment)[0]
        ]
        assert [r.lsn for r in records] == [1, 2]

    @pytest.mark.parametrize("mode", ["always", "batch", "off"])
    def test_fsync_modes_all_persist_appends(self, tmp_path, mode):
        events = {}
        log = WriteAheadLog(
            tmp_path,
            fsync=mode,
            fsync_every=2,
            on_event=lambda name, amount=1: events.__setitem__(
                name, events.get(name, 0) + amount
            ),
        )
        for op in _ops(6):
            log.append(op)
        log.close()
        records = [
            record
            for segment in segment_files(tmp_path)
            for record in scan_segment(segment)[0]
        ]
        assert len(records) == 6
        assert events["wal_appends"] == 6
        if mode == "always":
            assert events["wal_fsyncs"] >= 6
        elif mode == "batch":
            assert 1 <= events["wal_fsyncs"] <= 6
        else:
            assert "wal_fsyncs" not in events

    def test_unknown_fsync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, fsync="yolo")

    def test_size_bytes_tracks_disk(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        assert log.size_bytes() == 0
        log.append({"op": "a"})
        on_disk = sum(p.stat().st_size for p in segment_files(tmp_path))
        assert log.size_bytes() == on_disk
        log.close()


class TestRotatePrune:
    def test_rotate_returns_boundary_and_starts_new_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        for op in _ops(3):
            log.append(op)
        boundary = log.rotate()
        assert boundary == 3
        log.append({"op": "late"})
        log.close()
        segments = segment_files(tmp_path)
        assert len(segments) == 2
        first, _, _ = scan_segment(segments[0])
        second, _, _ = scan_segment(segments[1])
        assert [r.lsn for r in first] == [1, 2, 3]
        assert [r.lsn for r in second] == [4]

    def test_prune_removes_covered_segments_only(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        for op in _ops(3):
            log.append(op)
        boundary = log.rotate()
        log.append({"op": "tail"})
        removed = log.prune(boundary)
        assert removed == 1
        segments = segment_files(tmp_path)
        assert len(segments) == 1
        records, _, _ = scan_segment(segments[0])
        assert [r.lsn for r in records] == [4]
        log.close()

    def test_prune_never_removes_active_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        log.append({"op": "a"})
        assert log.prune(10_000) == 0
        assert len(segment_files(tmp_path)) == 1
        log.close()


class TestTornDetection:
    def test_crc_mismatch_stops_the_scan(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        for op in _ops(3):
            log.append(op)
        log.close()
        (segment,) = segment_files(tmp_path)
        data = bytearray(segment.read_bytes())
        # Flip one payload byte of the second record.
        first_len = _HEADER.unpack_from(data, 0)[0]
        second_payload_at = _HEADER.size + first_len + _HEADER.size
        data[second_payload_at] ^= 0xFF
        segment.write_bytes(bytes(data))
        records, clean_end, torn = scan_segment(segment)
        assert [r.lsn for r in records] == [1]
        assert torn == 2  # the corrupted record and the one behind it
        assert clean_end == _HEADER.size + first_len

    def test_unparsable_json_counts_as_torn(self, tmp_path):
        segment = tmp_path / "wal-00000000000000000001.log"
        segment.write_bytes(encode_record(b"not json"))
        records, clean_end, torn = scan_segment(segment)
        assert records == [] and clean_end == 0 and torn == 1

    def test_bogus_length_field_does_not_overallocate(self, tmp_path):
        segment = tmp_path / "wal-00000000000000000001.log"
        segment.write_bytes(_HEADER.pack(0xFFFFFFFF, 0) + b"xx")
        records, clean_end, torn = scan_segment(segment)
        assert records == [] and clean_end == 0 and torn == 1

    def test_truncate_segment_cuts_to_clean_prefix(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="off")
        for op in _ops(2):
            log.append(op)
        log.close()
        (segment,) = segment_files(tmp_path)
        whole = segment.read_bytes()
        segment.write_bytes(whole[:-3])  # tear the final record
        records, clean_end, torn = scan_segment(segment)
        assert [r.lsn for r in records] == [1]
        assert torn == 1
        dropped = truncate_segment(segment, clean_end)
        assert dropped == len(whole) - 3 - clean_end
        records, clean_end_2, torn_2 = scan_segment(segment)
        assert [r.lsn for r in records] == [1]
        assert torn_2 == 0
        assert clean_end_2 == segment.stat().st_size


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"views": {"v": 1}}, lsn=7)
        lsn, state = store.load_newest()
        assert lsn == 7
        assert state == {"views": {"v": 1}}

    def test_newest_wins_and_old_ones_pruned(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for lsn in (1, 5, 9):
            store.save({"at": lsn}, lsn=lsn)
        kept = sorted(p.name for p in tmp_path.glob("checkpoint-*.json"))
        assert len(kept) == 2
        lsn, state = store.load_newest()
        assert (lsn, state) == (9, {"at": 9})

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        store.save({"at": 3}, lsn=3)
        store.save({"at": 8}, lsn=8)
        newest = max(tmp_path.glob("checkpoint-*.json"))
        newest.write_text("{ torn")
        lsn, state = store.load_newest()
        assert (lsn, state) == (3, {"at": 3})

    def test_empty_directory_loads_zero(self, tmp_path):
        assert CheckpointStore(tmp_path).load_newest() == (0, None)

    def test_no_tmp_file_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, lsn=1)
        assert not list(tmp_path.glob("*.tmp"))


class TestDurabilityManager:
    def test_roundtrip_checkpoint_and_wal_suffix(self, tmp_path):
        manager = DurabilityManager(
            tmp_path, fsync="off", capture=lambda: {"views": {}}
        )
        for op in _ops(3):
            manager.append(op)
        assert manager.checkpoint()
        manager.append({"op": "after"})
        manager.close(final_checkpoint=False)

        manager = DurabilityManager(tmp_path, fsync="off")
        state, records = manager.scan()
        assert state == {"views": {}}
        assert manager.last_checkpoint_lsn == 3
        assert [r.lsn for r in records] == [4]
        assert records[0].operation == {"op": "after"}
        manager.close(final_checkpoint=False)

    def test_lock_excludes_second_opener(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="off")
        with pytest.raises(DataDirLocked) as info:
            DurabilityManager(tmp_path, fsync="off")
        assert isinstance(info.value, RecoveryError)
        manager.close(final_checkpoint=False)
        # Released on close: a fresh manager can take over.
        DurabilityManager(tmp_path, fsync="off").close(
            final_checkpoint=False
        )

    def test_generation_bumps_and_persists(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="off")
        assert manager.generation == 0
        assert manager.bump_generation() == 1
        manager.close(final_checkpoint=False)
        manager = DurabilityManager(tmp_path, fsync="off")
        assert manager.generation == 1
        manager.close(final_checkpoint=False)

    def test_torn_mid_stream_segment_drops_later_segments(self, tmp_path):
        manager = DurabilityManager(tmp_path, fsync="off")
        manager.append({"op": "one"})
        manager._wal.rotate()
        manager.append({"op": "two"})
        manager.close(final_checkpoint=False)
        first, second = segment_files(tmp_path)
        first.write_bytes(first.read_bytes()[:-2])  # tear segment 1
        manager = DurabilityManager(tmp_path, fsync="off")
        _state, records = manager.scan()
        # Nothing after the tear may replay: a hole in the middle of
        # the stream would reorder history.
        assert records == []
        assert manager.torn_records_dropped == 2
        manager.close(final_checkpoint=False)

    def test_maybe_checkpoint_honours_cadence(self, tmp_path):
        manager = DurabilityManager(
            tmp_path,
            fsync="off",
            checkpoint_every=3,
            capture=lambda: {"n": 1},
        )
        assert not manager.maybe_checkpoint()
        manager.append({"op": "a"})
        manager.append({"op": "b"})
        assert not manager.maybe_checkpoint()
        manager.append({"op": "c"})
        assert manager.maybe_checkpoint()
        assert manager.last_checkpoint_lsn == 3
        manager.close(final_checkpoint=False)
