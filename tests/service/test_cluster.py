"""The sharded serving tier: framing, ring, rollup, end-to-end routing.

The end-to-end tests run a real cluster — worker processes spawned via
multiprocessing, an asyncio router on a unix socket, framed clients —
at 2 shards, small enough to stay fast, real enough to exercise every
hop of the data path.  Unix socket paths come from a short mkdtemp
(``tmp_path`` can exceed the AF_UNIX 107-byte limit).
"""

import json
import os
import shutil
import socket
import tempfile
import threading

import pytest

from repro.service.cluster import (
    ClusterClient,
    ClusterReplyError,
    FrameError,
    HashRing,
    canonical_fact_text,
    cluster,
    encode_frame,
    read_frame,
    rollup_metrics,
    write_frame,
)

TC = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- edge(X, Y), tc(Y, Z)."


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


class TestFraming:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5)
        right.settimeout(5)
        return left, right

    def test_round_trip(self):
        left, right = self._pair()
        try:
            write_frame(left, b"query v tc")
            assert read_frame(right) == b"query v tc"
        finally:
            left.close()
            right.close()

    def test_empty_and_binary_payloads(self):
        left, right = self._pair()
        try:
            write_frame(left, b"")
            payload = bytes(range(256))
            write_frame(left, payload)
            assert read_frame(right) == b""
            assert read_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_eof_at_boundary_is_none(self):
        left, right = self._pair()
        left.close()
        try:
            assert read_frame(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = self._pair()
        try:
            left.sendall(encode_frame(b"hello")[:6])  # header + 2 bytes
            left.close()
            with pytest.raises(FrameError):
                read_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = self._pair()
        try:
            write_frame(left, b"x" * 64)
            with pytest.raises(FrameError):
                read_frame(right, max_bytes=16)
        finally:
            left.close()
            right.close()

    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameError):
            from repro.service.cluster.framing import MAX_FRAME_BYTES

            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_deterministic_across_instances(self):
        shards = [f"shard-{i}" for i in range(4)]
        ring_a, ring_b = HashRing(shards), HashRing(shards)
        for key in (f"view{i}" for i in range(50)):
            assert ring_a.assign(key) == ring_b.assign(key)

    def test_removal_only_moves_the_removed_shards_keys(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        keys = [f"view{i}" for i in range(200)]
        before = {key: ring.assign(key) for key in keys}
        smaller = ring.without_shard("shard-2")
        for key in keys:
            if before[key] != "shard-2":
                assert smaller.assign(key) == before[key]
            else:
                assert smaller.assign(key) != "shard-2"

    def test_addition_only_steals_keys_for_the_new_shard(self):
        ring = HashRing(["shard-0", "shard-1"])
        keys = [f"view{i}" for i in range(200)]
        before = {key: ring.assign(key) for key in keys}
        bigger = ring.with_shard("shard-2")
        for key in keys:
            assert bigger.assign(key) in (before[key], "shard-2")

    def test_all_shards_receive_keys(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        owners = {ring.assign(f"view{i}") for i in range(400)}
        assert owners == set(ring.shards)

    def test_empty_ring_rejects_assign(self):
        with pytest.raises(ValueError):
            HashRing([]).assign("view")


# ---------------------------------------------------------------------------
# fact canonicalization (drain/respawn replay identity)
# ---------------------------------------------------------------------------


class TestCanonicalFactText:
    def test_whitespace_and_trailing_dot_insensitive(self):
        spellings = ["edge(a, b)", "edge(a,b)", "edge( a , b ).", "edge(a, b)."]
        assert len({canonical_fact_text(s) for s in spellings}) == 1

    def test_quoted_strings_keep_interior_spaces(self):
        a = canonical_fact_text('label(n, "hello world")')
        b = canonical_fact_text('label(n,  "hello world" ).')
        c = canonical_fact_text('label(n, "helloworld")')
        assert a == b
        assert a != c


# ---------------------------------------------------------------------------
# metrics rollup rules (pure)
# ---------------------------------------------------------------------------


def _shard_snapshot(inserts, views_registered, phase_count=1):
    return {
        "counters": {"requests_total": inserts + 1, "errors_total": 0},
        "rollup": {"inserts_applied": inserts, "queries": 2},
        "retired": {"queries": 1},
        "views": {},
        "gauges": {
            "views_registered": views_registered,
            "stale_views": 0,
            "inflight_requests": 1,
        },
        "phase_histograms": {
            "apply": {
                "count": phase_count,
                "sum": 0.5,
                "buckets": {"le_0.5": phase_count, "le_inf": 0},
            }
        },
        "locks": {},
        "cache": {"size": 0},
    }


class TestRollup:
    def test_counters_summed_gauges_labeled(self):
        aggregate = rollup_metrics(
            {"shard-0": _shard_snapshot(3, 2), "shard-1": _shard_snapshot(5, 1)},
        )
        assert aggregate["rollup"]["inserts_applied"] == 8
        assert aggregate["counters"]["requests_total"] == 10
        assert aggregate["retired"]["queries"] == 2
        assert aggregate["gauges"]["views_registered"] == 3
        assert set(aggregate["gauges"]["per_shard"]) == {"shard-0", "shard-1"}
        # Histograms merge bucket-wise.
        merged = aggregate["phase_histograms"]["apply"]
        assert merged["count"] == 2
        assert merged["buckets"]["le_0.5"] == 2

    def test_router_retired_keeps_rollup_monotone(self):
        live = rollup_metrics(
            {"shard-0": _shard_snapshot(3, 1), "shard-1": _shard_snapshot(5, 1)}
        )
        # shard-1 dies; its last-reported counters move into retired.
        after = rollup_metrics(
            {"shard-0": _shard_snapshot(3, 1)},
            router_retired={"inserts_applied": 5, "queries": 2},
            drained={"shard-1": "drained"},
        )
        assert (
            after["rollup"]["inserts_applied"]
            >= live["rollup"]["inserts_applied"]
        )
        assert after["drained"] == {"shard-1": "drained"}


# ---------------------------------------------------------------------------
# end-to-end: a real 2-shard cluster
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def running_cluster():
    """One 2-shard cluster shared by the read/write-path tests.

    Tests using this fixture must use distinct view names and must not
    drain or kill shards (the failure suite spins its own clusters).
    """
    directory = tempfile.mkdtemp(prefix="repro-clu-")
    socket_path = os.path.join(directory, "fd")
    with cluster(socket_path, shards=2, heartbeat_interval=0.5) as router:
        yield router, socket_path
    shutil.rmtree(directory, ignore_errors=True)


def _client(socket_path):
    return ClusterClient(socket_path, timeout=60.0)


class TestClusterEndToEnd:
    def test_register_update_query_roundtrip(self, running_cluster):
        router, socket_path = running_cluster
        with _client(socket_path) as client:
            info = client.register("e2e_tc", TC)
            assert info["name"] == "e2e_tc"
            client.insert("e2e_tc", "edge(a, b)")
            client.insert("e2e_tc", "edge(b, c)")
            client.delete("e2e_tc", "edge(b, c)")
            client.insert("e2e_tc", "edge(b, d)")
            rows, undefined = client.query("e2e_tc", "tc")
            assert sorted(rows) == ["tc(a, b)", "tc(a, d)", "tc(b, d)"]
            assert undefined == []
            assert "e2e_tc" in client.views()
            # The routing table published the assignment.
            assert router.routing_table()["e2e_tc"] in (
                "shard-0",
                "shard-1",
            )

    def test_bound_pattern_query_routes_to_home_shard(self, running_cluster):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("e2e_demand", TC)
            client.insert("e2e_demand", "edge(a, b)")
            client.insert("e2e_demand", "edge(b, c)")
            rows, undefined = client.query_pattern("e2e_demand", "tc(a, _)")
            assert sorted(rows) == ["tc(a, b)", "tc(a, c)"]
            assert undefined == []
            # New constant, same pattern: an incremental seed insert on
            # the shard's demand entry.
            rows, _ = client.query_pattern("e2e_demand", "tc(b, _)")
            assert rows == ["tc(b, c)"]

    def test_views_spread_across_shards(self, running_cluster):
        router, socket_path = running_cluster
        with _client(socket_path) as client:
            for index in range(8):
                client.register(f"spread{index}", TC)
        owners = {
            router.routing_table()[f"spread{index}"] for index in range(8)
        }
        assert owners == {"shard-0", "shard-1"}

    def test_pipelined_requests_reply_in_order(self, running_cluster):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("pipe_tc", TC)
            lines = [f"+pipe_tc edge(n{i}, n{i + 1})" for i in range(6)]
            lines.append("query pipe_tc edge")
            replies = client.pipeline(lines)
            # Six acks, in order, then the query observing all six.
            for reply in replies[:-1]:
                assert reply[-1].startswith("ok ")
            rows = [r for r in replies[-1] if r.startswith("row ")]
            assert len(rows) == 6

    def test_metrics_rollup_sums_counters_and_labels_shards(
        self, running_cluster
    ):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("roll_a", TC)
            client.register("roll_b", TC)
            before = client.metrics()["rollup"].get("inserts_applied", 0)
            client.insert("roll_a", "edge(x, y)")
            client.insert("roll_b", "edge(x, y)")
            after = client.metrics()
            assert after["rollup"]["inserts_applied"] >= before + 2
            assert sorted(after["shards"]) == ["shard-0", "shard-1"]
            assert set(after["gauges"]["per_shard"]) == {
                "shard-0",
                "shard-1",
            }
            assert after["router"]["counters"]["requests_total"] > 0

    def test_cluster_prometheus_export(self, running_cluster):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("prom_tc", TC)
            client.insert("prom_tc", "edge(a, b)")
            text = client.metrics_prometheus()
        assert "# TYPE repro_inserts_applied_total counter" in text
        assert 'shard="shard-' in text

    def test_register_replace_routes_to_same_shard(self, running_cluster):
        router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("replace_me", TC)
            first = router.routing_table()["replace_me"]
            client.insert("replace_me", "edge(a, b)")
            client.register(
                "replace_me", "p(X) :- q(X).", semantics="stratified"
            )
            assert router.routing_table()["replace_me"] == first
            # The replacement's empty database won: the old facts died.
            rows, _ = client.query("replace_me", "p")
            assert rows == []

    def test_unregister_removes_route(self, running_cluster):
        router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("ephemeral", TC)
            assert "ephemeral" in router.routing_table()
            client.unregister("ephemeral")
            assert "ephemeral" not in router.routing_table()
            with pytest.raises(ClusterReplyError):
                client.query("ephemeral", "tc")

    def test_unknown_view_is_wire_coded_error(self, running_cluster):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            reply = client.request("query no_such_view tc")
            assert reply[-1].startswith("error")

    def test_stats_fan_out(self, running_cluster):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.register("stats_tc", TC)
            shards = client.stats()["shards"]
            assert set(shards) == {"shard-0", "shard-1"}

    def test_embedded_newline_rejected(self, running_cluster):
        _router, socket_path = running_cluster
        with _client(socket_path) as client:
            client.send("query a\nquery b")
            reply = client.receive()
            assert reply[-1].startswith("error")

    def test_concurrent_clients_multi_view_updates(self, running_cluster):
        """Parallel writers on different shards all get acked and land."""
        _router, socket_path = running_cluster
        views = [f"par{i}" for i in range(4)]
        with _client(socket_path) as client:
            for view in views:
                client.register(view, TC)
        errors = []

        def writer(view):
            try:
                with _client(socket_path) as mine:
                    for tick in range(10):
                        mine.insert(view, f"edge(t{tick}, t{tick + 1})")
            except Exception as exc:  # pragma: no cover - debug aid
                errors.append((view, exc))

        threads = [
            threading.Thread(target=writer, args=(view,)) for view in views
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        with _client(socket_path) as client:
            for view in views:
                rows, _ = client.query(view, "tc")
                assert "tc(t0, t10)" in rows  # the full chain closed
