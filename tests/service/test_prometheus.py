"""The Prometheus exporter: renderer, protocol verb, textfile daemon."""

import math
import re
import time

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.service import (
    PrometheusExporter,
    QueryService,
    render_prometheus,
    serve_stream,
)

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
edge(b, c).
"""


@pytest.fixture
def service():
    svc = QueryService(function_registry=translation_registry())
    try:
        yield svc
    finally:
        svc.close()


def _warm(service):
    service.register("tc_view", TC)
    service.insert("tc_view", "edge", "c", "d")
    service.query("tc_view", "tc")
    service.query("tc_view", "tc")  # the second hits the cache
    return service.metrics_snapshot()


def _sample(text, metric, **labels):
    """The float value of one exposition line, or None."""
    if labels:
        inner = ",".join(
            f'{name}="{value}"' for name, value in sorted(labels.items())
        )
        pattern = (
            "^" + re.escape(metric) + r"\{" + re.escape(inner) + r"\} (\S+)$"
        )
    else:
        pattern = "^" + re.escape(metric) + r" (\S+)$"
    match = re.search(pattern, text, flags=re.MULTILINE)
    return None if match is None else float(match.group(1))


class TestRenderer:
    def test_counters_match_snapshot(self, service):
        snapshot = _warm(service)
        text = render_prometheus(snapshot)
        assert (
            _sample(text, "repro_service_requests_total")
            == snapshot["counters"]["requests_total"]
        )
        assert (
            _sample(text, "repro_inserts_applied_total")
            == snapshot["rollup"]["inserts_applied"]
        )
        # No doubled suffix on counters already named *_total.
        assert "_total_total" not in text

    def test_type_lines_present_once(self, service):
        text = render_prometheus(_warm(service))
        for metric in (
            "repro_service_requests_total",
            "repro_inserts_applied_total",
        ):
            assert text.count(f"# TYPE {metric} counter") == 1

    def test_histograms_are_cumulative(self, service):
        snapshot = _warm(service)
        text = render_prometheus(snapshot)
        # For every phase histogram: buckets are non-decreasing in le
        # order, the +Inf bucket equals _count, and _count matches the
        # snapshot.
        for phase, histogram in snapshot["phase_histograms"].items():
            if not histogram.get("count"):
                continue
            pattern = (
                r'repro_phase_seconds_bucket\{le="([^"]+)",phase="'
                + re.escape(phase)
                + r'"\} (\d+)'
            )
            samples = [
                (
                    math.inf if le == "+Inf" else float(le),
                    int(value),
                )
                for le, value in re.findall(pattern, text)
            ]
            assert samples, f"no buckets rendered for {phase}"
            ordered = sorted(samples)
            counts = [count for _le, count in ordered]
            assert counts == sorted(counts), phase  # cumulative
            assert ordered[-1][0] == math.inf
            assert counts[-1] == histogram["count"]
            assert _sample(
                text, "repro_phase_seconds_count", phase=phase
            ) == histogram["count"]

    def test_per_view_gauges_labeled(self, service):
        _warm(service)
        text = render_prometheus(service.metrics_snapshot())
        assert _sample(
            text, "repro_snapshot_age", view="tc_view"
        ) is not None
        assert _sample(
            text, "repro_chain_depth", view="tc_view"
        ) is not None

    def test_cluster_shape_labels_shards(self):
        # A cluster aggregate (shaped like rollup_metrics output).
        text = render_prometheus(
            {
                "counters": {"requests_total": 7},
                "rollup": {"inserts_applied": 4},
                "router": {"counters": {"forwarded_total": 6}},
                "gauges": {
                    "views_registered": 3,
                    "per_shard": {
                        "shard-0": {"inflight_requests": 1},
                        "shard-1": {"inflight_requests": 0},
                    },
                },
            }
        )
        assert _sample(text, "repro_router_forwarded_total") == 6
        assert (
            _sample(text, "repro_inflight_requests", shard="shard-0") == 1
        )
        assert (
            _sample(text, "repro_inflight_requests", shard="shard-1") == 0
        )

    def test_label_escaping(self):
        text = render_prometheus(
            {"gauges": {"snapshot_age": {'we"ird\nname': 3}}}
        )
        assert '\\"' in text and "\\n" in text


class TestProtocolVerb:
    def _run(self, service, script):
        replies = []
        serve_stream(service, script.splitlines(), replies.append)
        return replies

    def test_metrics_format_prometheus(self, service):
        _warm(service)
        replies = self._run(service, "metrics --format=prometheus")
        assert replies[-1] == "ok prometheus"
        body = "\n".join(replies[:-1])
        assert "# TYPE repro_service_requests_total counter" in body

    def test_unknown_format_is_error(self, service):
        replies = self._run(service, "metrics --format=xml")
        assert replies[-1].startswith("error")

    def test_plain_metrics_still_json(self, service):
        _warm(service)
        replies = self._run(service, "metrics")
        assert replies[-1].startswith("ok {")


class TestExporter:
    def test_export_once_writes_atomically(self, service, tmp_path):
        _warm(service)
        path = tmp_path / "metrics.prom"
        exporter = PrometheusExporter(service.metrics_snapshot, str(path))
        exporter.export_once()
        text = path.read_text()
        assert "repro_service_requests_total" in text
        assert not (tmp_path / "metrics.prom.tmp").exists()

    def test_periodic_export_and_idempotent_stop(self, service, tmp_path):
        _warm(service)
        path = tmp_path / "metrics.prom"
        exporter = PrometheusExporter(
            service.metrics_snapshot, str(path), interval=0.05
        )
        exporter.start()
        exporter.start()  # second start is a no-op, not a second thread
        deadline = time.monotonic() + 10
        while not path.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert path.exists()
        # repro_queries_total counts service.query calls (the
        # service-level requests_total only counts protocol requests).
        before = _sample(path.read_text(), "repro_queries_total")
        service.query("tc_view", "tc")
        exporter.stop()  # writes a final export
        exporter.stop()  # idempotent
        after = _sample(path.read_text(), "repro_queries_total")
        assert after is not None and before is not None
        assert after > before

    def test_snapshot_failure_keeps_last_file(self, service, tmp_path):
        path = tmp_path / "metrics.prom"
        holder = {"source": service.metrics_snapshot}
        exporter = PrometheusExporter(
            lambda: holder["source"](), str(path)
        )
        exporter.export_once()
        good = path.read_text()

        def boom():
            raise RuntimeError("scrape failed")

        holder["source"] = boom
        exporter.export_once()  # must not raise, must not clobber
        assert path.read_text() == good
