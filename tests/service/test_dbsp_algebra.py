"""Property suite for the delta-stream algebra behind the DBSP engine.

Three layers, bottom up:

* **Z-sets are an abelian group** under ``+`` with pointwise negation,
  and the derived operators (``distinct``, ``pos``/``neg``, ``scale``)
  satisfy the identities the circuit relies on — checked on seeded
  random Z-sets with positive *and* negative weights;
* **integrate and differentiate are inverse**: ``D ∘ I = id`` on
  streams and ``I ∘ D = id`` on value sequences, and the fused
  :class:`IncrementalDistinct` node agrees step-by-step with the
  unfused ``distinct ∘ I`` it replaces;
* **the whole circuit equals from-scratch evaluation**: random update
  schedules (per-batch and multi-batch bursts) driven through
  :class:`DBSPEngine` over a recursive program with negation always
  land on the model :func:`repro.datalog.engine.run` computes from the
  final extensional state — and a burst of N batches lands on the same
  model as the same N batches applied one at a time.
"""

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.service import prepare_program
from repro.service.dbsp import (
    DBSPEngine,
    IncrementalDistinct,
    NegativeWeightError,
    ZSet,
    differentiate,
    integrate,
    running_integral,
)

NODES = [Atom(f"n{i}") for i in range(5)]

PROGRAM = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
top(X) :- node(X), not under(X).
under(Y) :- tc(X, Y).
"""

_PARSED = parse_program(PROGRAM)


def _random_zset(rng, rows=None, span=3):
    rows = rows if rows is not None else [(x, y) for x in NODES for y in NODES]
    zset = ZSet()
    for row in rng.sample(rows, rng.randint(0, min(8, len(rows)))):
        zset.add(row, rng.randint(-span, span))
    return zset


# ---------------------------------------------------------------------------
# Z-set group axioms
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_zset_abelian_group(seed):
    rng = random.Random(f"zset-group-{seed}")
    a, b, c = (_random_zset(rng) for _ in range(3))
    zero = ZSet()
    assert (a + b) + c == a + (b + c), "associativity"
    assert a + b == b + a, "commutativity"
    assert a + zero == a and zero + a == a, "identity"
    assert a + (-a) == zero, "inverse"
    assert a - b == a + (-b), "subtraction is addition of the inverse"


@pytest.mark.parametrize("seed", range(10))
def test_zset_zero_free_invariant(seed):
    """No materialised Z-set ever stores a zero weight."""
    rng = random.Random(f"zset-zero-{seed}")
    a, b = _random_zset(rng), _random_zset(rng)
    for zset in (a + b, a - b, -a, a.scale(0), a.scale(2)):
        assert all(weight != 0 for _, weight in zset.items())
    cancelling = a + (-a)
    assert len(cancelling) == 0 and not cancelling


@pytest.mark.parametrize("seed", range(10))
def test_zset_derived_operators(seed):
    rng = random.Random(f"zset-ops-{seed}")
    a = _random_zset(rng)
    # distinct: indicator of the positive support, idempotent.
    d = a.distinct()
    assert set(d.rows()) == {row for row, w in a.items() if w > 0}
    assert all(w == 1 for _, w in d.items())
    assert d.distinct() == d
    assert d.is_set()
    # pos/neg decomposition partitions the weights by sign.
    assert a.pos() + a.neg() == a
    assert all(w > 0 for _, w in a.pos().items())
    assert all(w < 0 for _, w in a.neg().items())
    # scale is repeated addition.
    assert a.scale(3) == a + a + a
    assert a.scale(-1) == -a


# ---------------------------------------------------------------------------
# integrate / differentiate
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_differentiate_integrate_inverse(seed):
    rng = random.Random(f"circuit-{seed}")
    stream = [_random_zset(rng) for _ in range(rng.randint(0, 8))]
    # D ∘ I = id on streams (prefix sums then consecutive differences).
    assert differentiate(running_integral(stream)) == stream
    # I ∘ D = id on value sequences (the integral starts at zero).
    values = running_integral(stream)
    assert running_integral(differentiate(values)) == values
    # The one-shot integral is the last prefix sum.
    total = integrate(stream)
    assert total == (values[-1] if values else ZSet())


@pytest.mark.parametrize("seed", range(10))
def test_incremental_distinct_agrees_with_unfused(seed):
    """The stateful node tracks ``distinct ∘ I`` delta-for-delta."""
    rng = random.Random(f"distinct-{seed}")
    rows = [(node,) for node in NODES]
    node = IncrementalDistinct()
    integral = ZSet()
    out_stream = []
    for _ in range(20):
        # Keep every integrated weight non-negative: deltas only retract
        # up to the current multiplicity.
        delta = ZSet()
        for row in rng.sample(rows, rng.randint(0, len(rows))):
            low = -integral.get(row)
            delta.add(row, rng.randint(low, 2))
        integral = integral + delta
        out_stream.append(node.step(delta))
        assert node.integral() == integral
        assert node.output() == integral.distinct()
    # The emitted deltas integrate to the distinct of the integral.
    assert integrate(out_stream) == integral.distinct()


def test_incremental_distinct_rejects_negative_totals():
    node = IncrementalDistinct()
    node.step(ZSet.from_rows([("a",)]))
    with pytest.raises(NegativeWeightError):
        node.step(ZSet({("a",): -2}))


# ---------------------------------------------------------------------------
# the full circuit vs from-scratch evaluation
# ---------------------------------------------------------------------------


def _fresh_engine(rng):
    database = Database()
    for node in NODES:
        database.add("node", node)
    universe = [(x, y) for x in NODES for y in NODES if x != y]
    for pair in rng.sample(universe, 6):
        database.add("edge", *pair)
    prepared = prepare_program("dbsp-algebra", PROGRAM)
    return DBSPEngine(prepared, database), universe


def _assert_matches_oracle(engine, step):
    oracle = run(_PARSED, engine.edb, semantics="stratified")
    model = engine.model()
    for predicate in ("tc", "top", "under"):
        assert model.get(predicate, frozenset()) == oracle.true_rows(
            predicate
        ), f"step {step}: {predicate} diverged from the oracle"


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 23])
def test_random_schedule_matches_oracle(seed):
    rng = random.Random(f"dbsp-schedule-{seed}")
    engine, universe = _fresh_engine(rng)
    _assert_matches_oracle(engine, "init")
    for step in range(40):
        pair = rng.choice(universe)
        if engine.edb.holds("edge", *pair):
            engine.apply(deletes=[("edge", pair)])
        else:
            engine.apply(inserts=[("edge", pair)])
        _assert_matches_oracle(engine, step)


@pytest.mark.parametrize("seed", [3, 5, 11, 17])
def test_burst_equals_sequential_equals_oracle(seed):
    """One apply_stream pass over N batches = N apply calls = run()."""
    rng = random.Random(f"dbsp-burst-{seed}")
    burst_engine, universe = _fresh_engine(rng)
    sequential_engine = DBSPEngine(
        burst_engine.prepared, burst_engine.edb.copy()
    )
    for step in range(8):
        batches = []
        for _ in range(rng.randint(1, 5)):
            inserts, deletes = [], []
            for pair in rng.sample(universe, rng.randint(1, 3)):
                if rng.random() < 0.5:
                    inserts.append(("edge", pair))
                else:
                    deletes.append(("edge", pair))
            batches.append((inserts, deletes))
        summary = burst_engine.apply_stream(batches)
        assert summary["batches"] == len(batches)
        for inserts, deletes in batches:
            sequential_engine.apply(inserts=inserts, deletes=deletes)
        assert burst_engine.model() == sequential_engine.model(), (
            f"step {step}: burst and sequential application diverged"
        )
        _assert_matches_oracle(burst_engine, step)


@pytest.mark.parametrize("seed", [4, 9])
def test_insert_then_delete_cancels_before_rules_fire(seed):
    """A batch pair that nets to zero is one circuit step and no delta."""
    rng = random.Random(f"dbsp-cancel-{seed}")
    engine, universe = _fresh_engine(rng)
    pair = next(
        candidate
        for candidate in universe
        if not engine.edb.holds("edge", *candidate)
    )
    before = engine.model()
    fired_before = engine.metrics.counters["rules_fired"]
    summary = engine.apply_stream(
        [([("edge", pair)], []), ([], [("edge", pair)])]
    )
    assert summary["delta_plus"] == 0 and summary["delta_minus"] == 0
    assert engine.model() == before
    assert engine.metrics.counters["rules_fired"] == fired_before, (
        "a cancelled burst must not reach the rule bodies"
    )
    assert engine.metrics.counters["circuit_steps"] == 1
    assert engine.metrics.counters["delta_batches_coalesced"] == 1
