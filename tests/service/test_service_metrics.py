"""Metamorphic properties of the service observability plane.

Three families of invariants:

* **monotonicity** — every counter (service-level and per-view, and the
  rollup across view churn) only ever grows;
* **gauge recovery** — the stale-view gauge returns to zero when every
  degraded view recovers, and time-in-degraded stops growing;
* **internal consistency** — each histogram's ``count`` equals the sum
  of its bucket counts, and the service rollup equals the retired
  counters plus the sum of the live per-view counters, including when
  read through the ``metrics`` protocol verb.
"""

import json

import pytest

from repro.robustness import (
    FaultInjector,
    FaultRule,
    ReproError,
    inject_faults,
)
from repro.service import Histogram, QueryService, ServiceMetrics, ViewMetrics
from repro.service.server import serve_stream

TC = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
    "edge(a, b).\nedge(b, c).\n"
)

#: Persistent faults on both maintenance and recovery: the recipe that
#: reliably drives an incremental view into degraded mode.
DEGRADE_PLAN = [
    FaultRule("incremental.component", times=None),
    FaultRule("incremental.initialize", times=None),
]


def _degrade(service, name):
    with inject_faults(FaultInjector(DEGRADE_PLAN)):
        with pytest.raises(ReproError):
            service.update(name, inserts=[("edge", ("x", "y"))])
    assert service.view(name).stale


def _check_histogram(snapshot):
    assert snapshot["count"] == sum(snapshot["buckets"].values())
    assert snapshot["sum"] >= 0.0


def _check_internal_consistency(snapshot):
    """The cross-section invariants of one metrics snapshot."""
    for counter, value in snapshot["rollup"].items():
        live = sum(
            stats["counters"].get(counter, 0)
            for stats in snapshot["views"].values()
        )
        assert value == snapshot["retired"].get(counter, 0) + live, counter
    for side in ("wait", "hold"):
        _check_histogram(snapshot["locks"][side])
    assert (
        snapshot["locks"]["wait"]["count"]
        == snapshot["counters"]["lock_acquisitions"]
    )
    for histogram in snapshot["phase_histograms"].values():
        _check_histogram(histogram)
    for stats in snapshot["views"].values():
        for histogram in stats["phase_histograms"].values():
            _check_histogram(histogram)
    gauges = snapshot["gauges"]
    assert gauges["views_registered"] == len(snapshot["views"])
    assert gauges["stale_views"] == sum(
        1 for stats in snapshot["views"].values() if stats["stale"]
    )
    assert set(gauges["time_in_degraded"]) == set(snapshot["views"])
    assert set(gauges["snapshot_age"]) == set(snapshot["views"])
    for age in gauges["snapshot_age"].values():
        assert age is None or age >= 0.0
    assert set(gauges["chain_depth"]) == set(snapshot["views"])
    for depth in gauges["chain_depth"].values():
        assert depth >= 0


def _flat_counters(snapshot):
    """Every monotone counter of a snapshot, flattened to one dict."""
    flat = {
        ("service", name): value
        for name, value in snapshot["counters"].items()
    }
    for name, value in snapshot["rollup"].items():
        flat[("rollup", name)] = value
    flat[("locks", "wait")] = snapshot["locks"]["wait"]["count"]
    flat[("locks", "hold")] = snapshot["locks"]["hold"]["count"]
    return flat


class TestMonotonicity:
    def test_counters_only_grow_across_mixed_traffic(self):
        service = QueryService()
        service.register("tc", TC)
        service.register("other", TC)
        previous = _flat_counters(service.metrics_snapshot())
        operations = [
            lambda: service.query("tc", "tc"),
            lambda: service.query("tc", "tc"),
            lambda: service.insert("tc", "edge", "c", "d"),
            lambda: service.query("other", "tc"),
            lambda: service.delete("tc", "edge", "c", "d"),
            lambda: service.register("third", TC),
            lambda: service.unregister("third"),
            lambda: service.query("other", "tc"),
            lambda: service.insert("other", "edge", "q", "r"),
            lambda: service.unregister("other"),
        ]
        for operation in operations:
            operation()
            current = _flat_counters(service.metrics_snapshot())
            for key, value in previous.items():
                assert current.get(key, 0) >= value, key
            previous = current

    def test_rollup_survives_unregistration(self):
        service = QueryService()
        service.register("tc", TC)
        service.query("tc", "tc")
        service.insert("tc", "edge", "c", "d")
        before = service.metrics_snapshot()["rollup"]
        assert before["queries"] >= 1 and before["update_batches"] >= 1
        service.unregister("tc")
        after = service.metrics_snapshot()["rollup"]
        for counter, value in before.items():
            assert after.get(counter, 0) >= value, counter
        # Everything now lives in the retired section.
        retired = service.metrics_snapshot()["retired"]
        assert retired["queries"] == after["queries"]


class TestCompactorMetrics:
    """Metamorphic coverage for the compactor's counters and gauge."""

    def _burst(self, service, name, tag, count=12):
        for i in range(count):
            service.insert(name, "edge", f"{tag}{i}", f"{tag}{i + 1}")

    def test_compactions_counter_is_monotone(self):
        service = QueryService(
            compactor="on-publish", compact_depth=2, compact_interval=3
        )
        service.register("tc", TC)
        previous = 0
        for round_number in range(4):
            self._burst(service, "tc", f"r{round_number}n", count=8)
            rollup = service.metrics_snapshot()["rollup"]
            assert rollup["compactions"] >= previous
            assert rollup["compactions"] >= 1
            assert rollup["compaction_rows"] >= rollup["compactions"]
            previous = rollup["compactions"]

    def test_chain_depth_gauge_within_cap_after_compaction_cycle(self):
        cap = 3
        service = QueryService(compactor="off", compact_depth=cap)
        service.register("tc", TC)
        self._burst(service, "tc", "m")
        before = service.metrics_snapshot()["gauges"]["chain_depth"]["tc"]
        assert before > cap
        service.view("tc").maybe_compact()
        after = service.metrics_snapshot()["gauges"]["chain_depth"]["tc"]
        assert after <= cap
        # Compacting an already-flat view is a no-op, not a bump.
        compactions = service.metrics_snapshot()["rollup"]["compactions"]
        service.view("tc").maybe_compact()
        assert (
            service.metrics_snapshot()["rollup"]["compactions"] == compactions
        )

    def test_retired_rollup_monotone_when_compacted_view_unregisters(self):
        service = QueryService(
            compactor="on-publish", compact_depth=2, compact_interval=3
        )
        service.register("tc", TC)
        service.register("keeper", TC)
        self._burst(service, "tc", "k")
        before = service.metrics_snapshot()["rollup"]
        assert before["compactions"] >= 1
        service.unregister("tc")
        after = service.metrics_snapshot()
        for counter, value in before.items():
            assert after["rollup"].get(counter, 0) >= value, counter
        # The departed view's compaction work moved to the retired
        # section wholesale.
        assert after["retired"]["compactions"] >= before["compactions"]
        assert (
            after["retired"]["compaction_rows"]
            >= before["compaction_rows"]
        )
        _check_internal_consistency(after)


class TestGaugeRecovery:
    def test_stale_gauge_returns_to_zero_after_recovery(self):
        service = QueryService()
        service.register("tc", TC)
        service.register("ok", TC)
        assert service.metrics_snapshot()["gauges"]["stale_views"] == 0
        _degrade(service, "tc")
        snapshot = service.metrics_snapshot()
        assert snapshot["gauges"]["stale_views"] == 1
        assert snapshot["gauges"]["time_in_degraded"]["tc"] > 0.0
        assert snapshot["views"]["tc"]["counters"]["degraded_entries"] >= 1
        assert service.view("tc").recover()
        healthy = service.metrics_snapshot()
        assert healthy["gauges"]["stale_views"] == 0

    def test_time_in_degraded_stops_growing_after_recovery(self):
        service = QueryService()
        service.register("tc", TC)
        _degrade(service, "tc")
        assert service.view("tc").recover()
        banked = service.metrics_snapshot()["gauges"]["time_in_degraded"]["tc"]
        service.query("tc", "tc")
        later = service.metrics_snapshot()["gauges"]["time_in_degraded"]["tc"]
        assert later == banked  # the degraded clock is stopped

    def test_inflight_gauge_is_zero_at_rest(self):
        service = QueryService()
        service.register("tc", TC)
        replies = []
        serve_stream(service, ["query tc tc", "metrics"], replies.append)
        # Inside the metrics request itself, the gauge showed ≥ 1...
        payload = json.loads(replies[-1][len("ok ") :])
        assert payload["gauges"]["inflight_requests"] >= 1
        # ...and it returns to zero once the stream has drained.
        assert service.metrics.inflight == 0


class TestInternalConsistency:
    def test_snapshot_invariants_direct(self):
        service = QueryService()
        service.register("tc", TC)
        service.register("win", TC)
        for _ in range(3):
            service.query("tc", "tc")
        service.insert("tc", "edge", "c", "d")
        service.insert("win", "edge", "p", "q")
        service.unregister("win")
        _check_internal_consistency(service.metrics_snapshot())

    def test_snapshot_invariants_via_metrics_verb(self):
        service = QueryService()
        replies = []
        serve_stream(
            service,
            [
                "register tc stratified " + " ".join(TC.split()),
                "query tc tc",
                "+tc edge(c, d)",
                "query tc tc",
                "register gone stratified " + " ".join(TC.split()),
                "query gone tc",
                "unregister gone",
                "metrics",
            ],
            replies.append,
        )
        payload = json.loads(replies[-1][len("ok ") :])
        _check_internal_consistency(payload)
        assert payload["counters"]["requests_total"] == 8
        assert payload["counters"]["errors_total"] == 0
        assert payload["retired"]["queries"] >= 1  # from "gone"

    def test_degraded_view_snapshot_stays_consistent(self):
        service = QueryService()
        service.register("tc", TC)
        _degrade(service, "tc")
        snapshot = service.metrics_snapshot()
        _check_internal_consistency(snapshot)
        service.unregister("tc")
        # The degraded time of the departed view is banked service-side.
        final = service.metrics_snapshot()
        _check_internal_consistency(final)
        assert final["retired_degraded_seconds"] > 0.0


class TestFallbackDistinction:
    """recompute_fallbacks counts only genuine incremental-path
    failures; routine recompute-mode traffic lands in
    recompute_batches."""

    def test_routine_recompute_batches_are_not_fallbacks(self):
        service = QueryService()
        # The valid semantics routes every batch through the recompute
        # path by design — none of that traffic is a fallback.
        service.register("win", TC, semantics="valid")
        for node in ("p", "q", "r"):
            service.insert("win", "edge", node, node + "2")
        counters = service.metrics_snapshot()["views"]["win"]["counters"]
        assert counters["recompute_batches"] == 3
        assert counters["recompute_fallbacks"] == 0

    def test_only_genuine_incremental_failures_count_as_fallbacks(self):
        from repro.service import IncrementalMaintenanceError

        service = QueryService()
        service.register("tc", TC)
        view = service.view("tc")
        assert view.mode == "incremental"

        def broken_apply(**_kwargs):
            raise IncrementalMaintenanceError("forced inconsistency")

        original = view.engine.apply
        view.engine.apply = broken_apply
        try:
            summary = service.insert("tc", "edge", "c", "d")
        finally:
            view.engine.apply = original
        # The maintenance error triggered the correctness valve...
        assert summary["mode"] == "reinitialized"
        counters = service.metrics_snapshot()["views"]["tc"]["counters"]
        assert counters["recompute_fallbacks"] == 1
        # ...without being misfiled as routine recompute-mode traffic.
        assert counters["recompute_batches"] == 0
        assert not view.stale


class TestHistogramUnit:
    def test_count_always_equals_bucket_sum(self):
        histogram = Histogram()
        for value in (0.0, -1.0, 0.0001, 0.003, 0.7, 5.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        _check_histogram(snapshot)
        assert snapshot["count"] == 7
        assert snapshot["buckets"]["le_inf"] == 1  # the 100.0 outlier

    def test_negative_observations_clamp_to_zero(self):
        histogram = Histogram()
        histogram.observe(-5.0)
        assert histogram.snapshot()["sum"] == 0.0
        assert histogram.snapshot()["buckets"]["le_0.0001"] == 1

    def test_service_metrics_absorb_accumulates(self):
        metrics = ServiceMetrics()
        first = ViewMetrics()
        first.bump("queries", 3)
        second = ViewMetrics()
        second.bump("queries", 4)
        metrics.absorb(first)
        metrics.absorb(second)
        assert metrics.snapshot()["retired"]["queries"] == 7
