"""Regression tests for register/unregister races in the query service.

Each test pins one of the races the per-view lock sharding opened up:

* a ``cache.put`` completed by an in-flight request against a replaced
  registration must never be served to queries against the replacement
  (per-registration cache generations);
* the program registry and the view table are mutated under one write
  hold, so they can never disagree;
* ``unregister`` takes the view lock before the registry write lock,
  so an update the service acknowledges has really landed in a
  registered view — never silently discarded with the view;
* the metrics rollup stays monotone across register/unregister churn
  (live and retired counters are swapped atomically).
"""

import threading
import time

import pytest

from repro.datalog.database import Database
from repro.relations import Atom
from repro.service import QueryService

PROGRAM = "p(X) :- base(X).\n"


def _database(*names):
    database = Database()
    database.declare("base")
    for name in names:
        database.add("base", Atom(name))
    return database


class TestStaleCacheGenerations:
    def test_inflight_put_against_replaced_view_is_unreachable(self):
        """The high-severity race: an in-flight query resolves the old
        view, the view is replaced (which invalidates the cache), and
        then the in-flight query completes its ``cache.put`` of
        old-view rows.  The put must land under a dead generation, not
        poison queries against the replacement."""
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        assert service.query("tc", "p") == {(Atom("a"),)}

        # An in-flight request snapshots (view, lock, generation) ...
        old_view, old_lock, old_generation = service._view_and_lock("tc")
        # ... then the registration is replaced (swap + invalidate) ...
        service.register("tc", PROGRAM, database=_database("b"))
        # ... and only now does the straggler finish, caching old rows.
        with old_lock.held():
            stale = service._query_locked(old_view, "tc", old_generation, "p")
        assert stale == {(Atom("a"),)}

        # The replacement's queries must never see the straggler's put.
        assert service.query("tc", "p") == {(Atom("b"),)}
        assert service.query("tc", "p") == {(Atom("b"),)}  # cached path

    def test_inflight_put_after_unregister_then_reregister(self):
        """Same race through unregister + fresh register of the name."""
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        service.query("tc", "p")
        old_view, old_lock, old_generation = service._view_and_lock("tc")
        service.unregister("tc")
        service.register("tc", PROGRAM, database=_database("c"))
        with old_lock.held():
            service._query_locked(old_view, "tc", old_generation, "p")
        assert service.query("tc", "p") == {(Atom("c"),)}

    def test_generation_bumps_on_every_register(self):
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        first = service._view_and_lock("tc")[2]
        service.register("tc", PROGRAM, database=_database("b"))
        second = service._view_and_lock("tc")[2]
        assert second > first


class TestRegistryViewLockstep:
    def test_tables_agree_after_register_unregister_churn(self):
        """Racing register/unregister on one name must never leave a
        view without its program (the KeyError-over-the-wire bug) and
        must leave every table in lockstep at quiescence."""
        service = QueryService()
        errors = []
        barrier = threading.Barrier(4)

        def churn(seed):
            barrier.wait()
            try:
                for _ in range(25):
                    service.register(
                        "shared", PROGRAM, database=_database("a")
                    )
                    try:
                        service.unregister("shared")
                    except KeyError as exc:
                        # Losing the unregister race to another thread
                        # is fine — but only with the "no view" error;
                        # "program not registered" would mean the
                        # tables disagreed.
                        if "no view registered" not in str(exc):
                            raise
            except Exception as exc:
                errors.append(f"churn {seed}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=churn, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
        # Whatever survived, every table names exactly the same views.
        names = set(service.views)
        assert set(service.registry.names()) == names
        assert set(service._locks) == names
        assert set(service._generations) == names
        for name in names:
            service.query(name, "p")  # and they actually serve

    def test_register_stores_program_with_view(self):
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        assert "tc" in service.registry
        service.unregister("tc")
        assert "tc" not in service.registry
        assert "tc" not in service.views


class TestUnregisterOrdering:
    def test_unregister_waits_for_acknowledged_update(self):
        """An update that holds the view lock finishes (and its write
        lands) before a concurrent unregister can drop the view — no
        acknowledged-but-discarded writes."""
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        view = service.view("tc")

        entered = threading.Event()
        release = threading.Event()
        real_apply = view.apply

        def slow_apply(**kwargs):
            entered.set()
            assert release.wait(timeout=30)
            return real_apply(**kwargs)

        view.apply = slow_apply
        results = {}

        def do_update():
            results["update"] = service.update(
                "tc", inserts=[("base", (Atom("z"),))]
            )

        def do_unregister():
            results["unregister"] = service.unregister("tc")

        updater = threading.Thread(target=do_update)
        updater.start()
        assert entered.wait(timeout=30)
        dropper = threading.Thread(target=do_unregister)
        dropper.start()
        # The unregister must block on the view lock while the update
        # is mid-apply.
        time.sleep(0.2)
        assert "unregister" not in results
        release.set()
        updater.join(timeout=30)
        dropper.join(timeout=30)
        assert not updater.is_alive() and not dropper.is_alive()
        # The acknowledged write landed before the view was dropped.
        assert results["update"]["plus"]["base"] == {(Atom("z"),)}
        assert results["unregister"]["facts"] == 2  # base(a), base(z)
        with pytest.raises(KeyError):
            service.query("tc", "p")

    def test_query_retries_when_view_replaced_between_resolve_and_lock(self):
        """_locked_view re-verifies the binding after acquiring the
        lock and re-resolves when it lost a race with register.
        (``read_mode="locked"`` — the snapshot path resolves off the
        name table instead; see TestNameTable for its analogue.)"""
        service = QueryService(read_mode="locked")
        service.register("tc", PROGRAM, database=_database("a"))
        original = service._view_and_lock

        calls = {"count": 0}

        def racing_resolve(name):
            view, lock, generation = original(name)
            if calls["count"] == 0:
                calls["count"] += 1
                # The view is replaced between the resolve and the
                # lock acquisition — the stale binding must be retried.
                service.register(name, PROGRAM, database=_database("b"))
            return view, lock, generation

        service._view_and_lock = racing_resolve
        assert service.query("tc", "p") == {(Atom("b"),)}
        assert calls["count"] == 1

    def test_unregister_raises_cleanly_after_losing_race(self):
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        service.unregister("tc")
        with pytest.raises(KeyError, match="no view registered"):
            service.unregister("tc")


class _PoisonedRegistryLock:
    """A registry lock stand-in that fails the test on any acquisition."""

    def read_locked(self):
        raise AssertionError("registry read lock taken on the wait-free path")

    def write_locked(self):
        raise AssertionError("registry write lock taken on the wait-free path")


class TestNameTable:
    """The copy-on-write name table: wait-free resolution under churn."""

    def test_snapshot_query_takes_no_registry_lock(self):
        """The whole snapshot read path — name resolution included —
        must complete without a single registry-lock acquisition."""
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        service.query("tc", "p")  # warm the cache path too
        service._registry_lock = _PoisonedRegistryLock()
        assert service.query("tc", "p") == {(Atom("a"),)}
        assert service.undefined("tc", "p") == frozenset()
        rows, undefined, stale = service.query_state("tc", "p")
        assert rows == {(Atom("a"),)} and undefined == frozenset()
        assert not stale

    def test_unregister_publishes_fresh_table(self):
        """Regression: ``unregister`` must publish a *new* table, not
        mutate the published dict — a lock-free resolver iterating the
        old table must never see a half-removed entry."""
        service = QueryService()
        service.register("keep", PROGRAM, database=_database("a"))
        service.register("drop", PROGRAM, database=_database("b"))
        before = service.name_table()
        assert set(before) == {"keep", "drop"}
        service.unregister("drop")
        after = service.name_table()
        # A fresh object was published, with the entry gone ...
        assert after is not before
        assert set(after) == {"keep"}
        # ... and the pinned table is untouched: both entries complete.
        assert set(before) == {"keep", "drop"}
        view, generation = before["drop"]
        assert view.rows("p") == {(Atom("b"),)}
        assert isinstance(generation, int)

    def test_register_replacement_publishes_fresh_table(self):
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        before = service.name_table()
        old_view = before["tc"][0]
        service.register("tc", PROGRAM, database=_database("b"))
        after = service.name_table()
        assert after is not before
        assert before["tc"][0] is old_view  # pinned table unchanged
        assert after["tc"][0] is not old_view
        assert after["tc"][1] > before["tc"][1]  # generation bumped

    def test_query_retries_when_replaced_between_resolve_and_pickup(self):
        """The wait-free analogue of the _locked_view retry: a register
        that lands between the table resolution and the snapshot pickup
        must not have its replaced view's snapshot served."""
        service = QueryService()
        service.register("tc", PROGRAM, database=_database("a"))
        old_view = service.view("tc")
        real_read = old_view.read_snapshot
        fired = {"count": 0}

        def racing_read():
            snapshot = real_read()
            if fired["count"] == 0:
                fired["count"] += 1
                service.register("tc", PROGRAM, database=_database("b"))
            return snapshot

        old_view.read_snapshot = racing_read
        assert service.query("tc", "p") == {(Atom("b"),)}
        assert fired["count"] == 1

    def test_pinned_table_never_tears_under_churn(self):
        """A resolver holding the old table during register/unregister
        churn keeps a complete, immutable image: same names, same view
        identities, every entry a well-formed (view, generation) pair —
        while live resolutions stay well-formed too."""
        service = QueryService()
        for i in range(3):
            service.register(f"fixed{i}", PROGRAM, database=_database("a"))
        pinned = service.name_table()
        pinned_entries = {
            name: (view, generation)
            for name, (view, generation) in pinned.items()
        }
        stop = threading.Event()
        errors = []

        def churn():
            try:
                for round_number in range(40):
                    service.register(
                        "churn", PROGRAM, database=_database("a")
                    )
                    service.register(  # replace one of the pinned names
                        "fixed1", PROGRAM, database=_database("b")
                    )
                    service.unregister("churn")
            except Exception as exc:
                errors.append(f"churn: {type(exc).__name__}: {exc}")
            finally:
                stop.set()

        def resolve():
            try:
                while not stop.is_set():
                    # The pinned table is frozen in time.
                    assert set(pinned) == set(pinned_entries)
                    for name, (view, generation) in pinned.items():
                        assert pinned_entries[name][0] is view
                        assert pinned_entries[name][1] == generation
                    # Live tables are always complete and well-formed.
                    live = service.name_table()
                    for name, entry in live.items():
                        assert len(entry) == 2
                        view, generation = entry
                        assert isinstance(generation, int)
                        assert view.rows("p") is not None
                    # And the service resolves through them cleanly.
                    try:
                        service.query("fixed0", "p")
                        service.query("churn", "p")
                    except KeyError:
                        pass  # mid unregister/register cycle
            except Exception as exc:
                errors.append(f"resolver: {type(exc).__name__}: {exc}")

        resolver = threading.Thread(target=resolve)
        churner = threading.Thread(target=churn)
        resolver.start()
        churner.start()
        churner.join(timeout=60)
        resolver.join(timeout=60)
        assert not churner.is_alive() and not resolver.is_alive()
        assert not errors, errors
        # The pinned table still serves its world: the replaced
        # registration's *old* view is reachable and consistent.
        assert pinned["fixed1"][0].rows("p") == {(Atom("a"),)}
        assert service.query("fixed1", "p") == {(Atom("b"),)}


TC_PROGRAM = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
)


def _chain_database():
    database = Database()
    database.declare("edge")
    database.add("edge", Atom("a"), Atom("b"))
    database.add("edge", Atom("b"), Atom("c"))
    return database


class TestSnapshotReadsUnderChurn:
    def test_pinned_snapshot_stays_consistent_under_churn(self):
        """A reader pinned to an old snapshot — and a reader following
        the live snapshot path — must only ever observe *complete*
        model versions while updates and register/unregister churn run:
        no torn mid-batch states, generations monotone per view, and
        the pinned snapshot bit-identical forever."""

        def atoms(*pairs):
            return frozenset(
                (Atom(x), Atom(y)) for x, y in pairs
            )

        # The only two consistent models the churn below can produce:
        # the chain closure, and the closure with the c→d→e extension
        # (always inserted and deleted as ONE batch, so any other
        # answer is a torn read).
        without = atoms(("a", "b"), ("b", "c"), ("a", "c"))
        with_extension = without | atoms(
            ("c", "d"), ("d", "e"), ("c", "e"),
            ("b", "d"), ("b", "e"), ("a", "d"), ("a", "e"),
        )
        legal = (without, with_extension)
        extension = [
            ("edge", (Atom("c"), Atom("d"))),
            ("edge", (Atom("d"), Atom("e"))),
        ]

        service = QueryService()
        service.register("tc", TC_PROGRAM, database=_chain_database())
        pinned = service.view("tc").read_snapshot()
        assert pinned is not None
        pinned_generation = pinned.generation
        assert pinned.rows("tc") == without

        stop = threading.Event()
        errors = []

        def churn():
            try:
                for round_number in range(30):
                    service.update("tc", inserts=extension)
                    service.update("tc", deletes=extension)
                    if round_number % 10 == 5:
                        # Replace the registration outright ...
                        service.register(
                            "tc", TC_PROGRAM, database=_chain_database()
                        )
                    if round_number % 10 == 9:
                        # ... and cycle it through a full unregister.
                        service.unregister("tc")
                        service.register(
                            "tc", TC_PROGRAM, database=_chain_database()
                        )
            except Exception as exc:
                errors.append(f"churn: {type(exc).__name__}: {exc}")
            finally:
                stop.set()

        def read():
            last_generation = {}
            try:
                while not stop.is_set():
                    # The pinned snapshot is immutable: same version,
                    # same rows, no matter what the writers do.
                    assert pinned.generation == pinned_generation
                    assert pinned.rows("tc") == without
                    try:
                        view = service.view("tc")
                    except KeyError:
                        continue  # mid unregister/register cycle
                    snapshot = view.read_snapshot()
                    if snapshot is not None:
                        rows = snapshot.rows("tc")
                        assert rows in legal, f"torn snapshot read: {rows}"
                        previous = last_generation.get(id(view))
                        if previous is not None:
                            assert snapshot.generation >= previous
                        last_generation[id(view)] = snapshot.generation
                    try:
                        rows = service.query("tc", "tc")
                    except KeyError:
                        continue
                    assert rows in legal, f"torn service read: {rows}"
            except Exception as exc:
                errors.append(f"reader: {type(exc).__name__}: {exc}")

        reader = threading.Thread(target=read)
        churner = threading.Thread(target=churn)
        reader.start()
        churner.start()
        churner.join(timeout=60)
        reader.join(timeout=60)
        assert not churner.is_alive() and not reader.is_alive()
        assert not errors, errors
        # The pinned snapshot survived the whole run unchanged.
        assert pinned.generation == pinned_generation
        assert pinned.rows("tc") == without


class TestRollupMonotoneUnderChurn:
    def test_rollup_never_decreases_while_views_churn(self):
        """Snapshots taken while views register/update/unregister must
        report a rollup in which no counter ever decreases."""
        service = QueryService()
        service.register("stable", PROGRAM, database=_database("a"))
        stop = threading.Event()
        errors = []

        def churn():
            try:
                for round_number in range(30):
                    service.register(
                        "churn", PROGRAM, database=_database("a")
                    )
                    service.update(
                        "churn",
                        inserts=[("base", (Atom(f"x{round_number}"),))],
                    )
                    service.query("churn", "p")
                    service.query("stable", "p")
                    service.unregister("churn")
            except Exception as exc:
                errors.append(f"churn: {type(exc).__name__}: {exc}")
            finally:
                stop.set()

        churner = threading.Thread(target=churn)
        churner.start()
        previous = {}
        try:
            while not stop.is_set():
                rollup = service.metrics_snapshot()["rollup"]
                for counter, value in previous.items():
                    assert rollup.get(counter, 0) >= value, (
                        f"rollup[{counter}] decreased: "
                        f"{value} -> {rollup.get(counter, 0)}"
                    )
                previous = rollup
        finally:
            churner.join(timeout=60)
        assert not churner.is_alive()
        assert not errors, errors
        # One final consistency check: rollup == retired + live views.
        snapshot = service.metrics_snapshot()
        recomputed = dict(snapshot["retired"])
        for stats in snapshot["views"].values():
            for counter, value in stats["counters"].items():
                recomputed[counter] = recomputed.get(counter, 0) + value
        assert snapshot["rollup"] == recomputed


class TestNameTableChurnCounters:
    """The COW republish cost is O(churn · views), and the counters
    that make that bound observable are themselves exact: every
    register/unregister republishes the table exactly once, copying
    exactly the post-mutation table size in cells."""

    def test_each_mutation_republishes_exactly_once(self):
        service = QueryService()
        assert service.name_table_republishes == 0
        assert service.name_table_copied_cells == 0

        expected_cells = 0
        for index in range(4):
            service.register(f"v{index}", PROGRAM, database=_database("a"))
            expected_cells += index + 1  # post-register table size
        assert service.name_table_republishes == 4
        assert service.name_table_copied_cells == expected_cells

        service.unregister("v0")
        expected_cells += 3  # post-unregister table size
        assert service.name_table_republishes == 5
        assert service.name_table_copied_cells == expected_cells

        # Replacement of an existing name is one churn event too.
        service.register("v1", PROGRAM, database=_database("b"))
        expected_cells += 3
        assert service.name_table_republishes == 6
        assert service.name_table_copied_cells == expected_cells

        gauges = service.metrics_snapshot()["gauges"]
        assert gauges["name_table_republishes"] == 6
        assert gauges["name_table_copied_cells"] == expected_cells

    def test_copied_cells_linear_in_churn_not_quadratic(self):
        """N re-registrations against V resident views copy exactly
        N·V cells — the bound that distinguishes one-republish-per-
        operation from accidental republish-per-view O(N²) blowup."""
        resident = 5
        service = QueryService()
        for index in range(resident):
            service.register(
                f"v{index}", PROGRAM, database=_database("a")
            )
        base_republishes = service.name_table_republishes
        base_cells = service.name_table_copied_cells

        churn = 20
        for _ in range(churn):
            service.register("v0", PROGRAM, database=_database("b"))

        assert service.name_table_republishes - base_republishes == churn
        copied = service.name_table_copied_cells - base_cells
        assert copied == churn * resident
