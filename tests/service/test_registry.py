"""Program registration: prepared plans and ground-program caching."""

import pytest

from repro.datalog.database import Database
from repro.datalog.grounding import UnsafeRuleError
from repro.relations import Atom
from repro.service import ProgramRegistry, prepare_program

a, b, c = Atom("a"), Atom("b"), Atom("c")

TC = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""

WIN = "win(X) :- move(X, Y), not win(Y).\n"


class TestPreparedProgram:
    def test_schedule_marks_recursion(self):
        prepared = prepare_program("tc", TC)
        assert prepared.stratified
        by_preds = {component.predicates: component for component in prepared.schedule}
        assert frozenset({"tc"}) in by_preds
        assert by_preds[frozenset({"tc"})].recursive
        assert not by_preds[frozenset({"edge"})].recursive
        assert not by_preds[frozenset({"edge"})].has_rules()

    def test_schedule_is_topologically_ordered(self):
        prepared = prepare_program(
            "layers",
            "p(X) :- e(X).\nq(X) :- p(X), not r(X).\nr(X) :- e(X), not p(X).\n",
        )
        positions = {
            predicate: index
            for index, component in enumerate(prepared.schedule)
            for predicate in component.predicates
        }
        assert positions["e"] < positions["p"] < positions["r"] < positions["q"]

    def test_inline_facts_become_seed_database(self):
        prepared = prepare_program("tc", TC + "edge(a, b).\n")
        assert prepared.seed_facts.holds("edge", a, b)
        assert all(not rule.is_fact() for rule in prepared.program.rules)

    def test_non_stratified_flagged_not_rejected(self):
        prepared = prepare_program("win", WIN)
        assert not prepared.stratified
        assert prepared.strata is None
        assert any(component.recursive for component in prepared.schedule)

    def test_unsafe_rule_rejected_at_registration(self):
        with pytest.raises(UnsafeRuleError):
            prepare_program("unsafe", "q(X) :- not p(X).\n")

    def test_ground_cache_keyed_by_fingerprint(self):
        prepared = prepare_program("win", WIN)
        db = Database().add("move", a, b).add("move", b, c)
        first = prepared.ground_for(db)
        again = prepared.ground_for(db.copy())
        assert again is first
        assert prepared.ground_cache_hits == 1
        db.add("move", c, a)
        other = prepared.ground_for(db)
        assert other is not first
        db.remove("move", c, a)
        assert prepared.ground_for(db) is first  # state revisited: cache hit


class TestProgramRegistry:
    def test_register_and_get(self):
        registry = ProgramRegistry()
        prepared = registry.register("tc", TC)
        assert registry.get("tc") is prepared
        assert "tc" in registry and len(registry) == 1
        assert registry.names() == ["tc"]

    def test_replace_guard(self):
        registry = ProgramRegistry()
        registry.register("tc", TC)
        with pytest.raises(ValueError):
            registry.register("tc", TC, replace=False)
        registry.register("tc", WIN)  # replace=True is the default
        assert not registry.get("tc").stratified

    def test_accepts_ast_programs(self):
        from repro.datalog.parser import parse_program

        registry = ProgramRegistry()
        prepared = registry.register("tc", parse_program(TC))
        assert prepared.stratified
