"""Unit tests: minimal model, stratified, and inflationary semantics."""

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database
from repro.datalog import Database, ground
from repro.datalog.parser import parse_program
from repro.datalog.semantics import (
    PositiveProgramRequired,
    inflationary_fixpoint,
    inflationary_model,
    inflationary_stages,
    least_model_naive,
    least_model_with_oracle,
    minimal_model,
    stratified_model,
)
from repro.relations import Atom

a, b, c = Atom("a"), Atom("b"), Atom("c")


def _rows(gp, atoms, predicate):
    return {gp.decode(i)[1] for i in atoms if gp.decode(i)[0] == predicate}


class TestMinimalModel:
    def test_tc_chain(self):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        gp = ground(program, edges_to_database(chain(4)))
        model = minimal_model(gp)
        tc = _rows(gp, model, "tc")
        assert len(tc) == 6  # all ordered pairs along the chain

    def test_rejects_negation(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(chain(3)))
        with pytest.raises(PositiveProgramRequired):
            minimal_model(gp)

    def test_naive_and_counting_agree(self):
        program = DEDUCTIVE_CORPUS["same-generation"].program
        gp = ground(program, edges_to_database(chain(5)))
        oracle = lambda _a: True
        assert least_model_naive(gp.rules, oracle) == least_model_with_oracle(
            gp.rules, oracle
        )

    def test_oracle_blocks_rules(self):
        program = parse_program("p(X) :- e(X), not q(X).")
        gp = ground(program, Database().add("e", a).add("q", a))
        q_id = gp.atom_id("q", (a,))
        allowed = least_model_with_oracle(gp.rules, lambda atom: True)
        blocked = least_model_with_oracle(gp.rules, lambda atom: atom != q_id)
        assert gp.atom_id("p", (a,)) in allowed
        assert gp.atom_id("p", (a,)) not in blocked

    def test_duplicate_body_atom_counted_correctly(self):
        program = parse_program("p :- e(X), e(X).")
        gp = ground(program, Database().add("e", a))
        model = minimal_model(gp)
        assert gp.atom_id("p", ()) in model


class TestStratified:
    def test_unreachable(self):
        case = DEDUCTIVE_CORPUS["unreachable"]
        gp = ground(case.program, edges_to_database(chain(3)))
        interp = stratified_model(case.program, gp)
        unreach = interp.true_rows(gp, "unreach")
        # n2 cannot reach anything; nothing reaches n0.
        assert (Atom("n2"), Atom("n0")) in unreach
        assert (Atom("n0"), Atom("n2")) not in unreach

    def test_total(self):
        case = DEDUCTIVE_CORPUS["unreachable"]
        gp = ground(case.program, edges_to_database(cycle(4)))
        interp = stratified_model(case.program, gp)
        assert interp.is_total_for(gp)

    def test_agrees_with_wellfounded_on_stratified_corpus(self):
        from repro.core.algebra_to_datalog import translation_registry
        from repro.datalog.semantics import well_founded_model

        registry = translation_registry()
        for case in DEDUCTIVE_CORPUS.values():
            if not case.stratified or case.uses_functions:
                continue
            gp = ground(case.program, edges_to_database(chain(4)), registry=registry)
            strat = stratified_model(case.program, gp)
            wfs = well_founded_model(gp)
            assert strat.true == wfs.true, case.name

    def test_raises_on_unstratified(self):
        from repro.datalog.stratification import NotStratifiedError

        case = DEDUCTIVE_CORPUS["win-move"]
        gp = ground(case.program, edges_to_database(chain(3)))
        with pytest.raises(NotStratifiedError):
            stratified_model(case.program, gp)


class TestInflationary:
    def test_stages_grow(self):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        gp = ground(program, edges_to_database(chain(5)))
        stages = inflationary_stages(gp)
        for earlier, later in zip(stages, stages[1:]):
            assert earlier < later

    def test_example4_behaviour(self):
        """R(a); R(x) ∧ ¬Q(x) → Q(x): inflationary derives Q(a)."""
        program = parse_program("r(a).\nq(X) :- r(X), not q(X).")
        gp = ground(program, Database())
        fixpoint = inflationary_fixpoint(gp)
        assert gp.atom_id("q", (a,)) in fixpoint

    def test_win_move_inflationary_differs_from_valid(self):
        from repro.datalog.semantics import valid_model

        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(chain(4)))
        inflat = inflationary_fixpoint(gp)
        valid = valid_model(gp)
        # Valid makes exactly the game-theoretic wins; inflationary
        # over-derives on chains (negation read as "not yet").
        assert valid.true < inflat

    def test_total_interpretation(self):
        program = parse_program("p(X) :- e(X).")
        gp = ground(program, Database().add("e", a))
        assert inflationary_model(gp).is_total_for(gp)

    def test_positive_program_matches_minimal_model(self):
        program = DEDUCTIVE_CORPUS["same-generation"].program
        gp = ground(program, edges_to_database(chain(4)))
        assert inflationary_fixpoint(gp) == minimal_model(gp)
