"""Unit tests for safety (Definition 4.1) and make_safe (Proposition 4.2)."""

import pytest

from repro.datalog.ast import Program, Var
from repro.datalog.grounding import UnsafeRuleError, binding_order
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.safety import (
    DOMAIN_PREDICATE,
    domain_program,
    is_safe_program,
    is_safe_rule,
    make_safe,
    restricted_vars,
    unsafe_rules,
)
from repro.datalog import Database, run
from repro.corpus import DEDUCTIVE_CORPUS
from repro.relations import Atom, Universe

X, Y = Var("X"), Var("Y")


class TestRestrictedVars:
    def test_positive_literal_restricts(self):
        rule = parse_rule("p(X) :- e(X, Y).")
        assert restricted_vars(rule.body) == {X, Y}

    def test_ground_assignment_restricts(self):
        rule = parse_rule("p(X) :- X = succ(0).")
        assert restricted_vars(rule.body) == {X}

    def test_assignment_chains(self):
        rule = parse_rule("p(Y) :- e(X), Y = succ(X).")
        assert restricted_vars(rule.body) == {X, Y}

    def test_negation_restricts_nothing(self):
        rule = parse_rule("p(X) :- not e(X).")
        assert restricted_vars(rule.body) == frozenset()

    def test_comparison_restricts_nothing(self):
        rule = parse_rule("p(X) :- X <= 3.")
        assert restricted_vars(rule.body) == frozenset()

    def test_function_arg_needs_restriction_first(self):
        rule = parse_rule("p(X) :- e(succ(X)).")
        assert restricted_vars(rule.body) == frozenset()


class TestIsSafe:
    @pytest.mark.parametrize(
        "source",
        [
            "p(X) :- e(X).",
            "p(X) :- e(X, Y), not q(Y).",
            "p(Y) :- e(X), Y = succ(X), Y <= 9.",
            "p(X) :- X = succ(0).",
            "win(X) :- move(X, Y), not win(Y).",
        ],
    )
    def test_safe(self, source):
        assert is_safe_rule(parse_rule(source))

    @pytest.mark.parametrize(
        "source",
        [
            "p(X) :- not e(X).",
            "p(X, Y) :- e(X).",
            "p(X) :- X <= 3.",
            "p(X) :- e(Y), X != Y.",
        ],
    )
    def test_unsafe(self, source):
        assert not is_safe_rule(parse_rule(source))

    def test_safety_matches_binding_order(self):
        """Definition 4.1 and the grounder's operational criterion agree."""
        sources = [
            "p(X) :- e(X).",
            "p(X) :- not e(X).",
            "p(X, Y) :- e(X).",
            "p(Y) :- e(X), Y = succ(X).",
            "p(X) :- e(succ(X)).",
            "p(X) :- d(X), e(succ(X)).",
            "p(X) :- e(X), not q(X, Y).",
        ]
        for source in sources:
            rule = parse_rule(source)
            try:
                binding_order(rule)
                operational = True
            except UnsafeRuleError:
                operational = False
            assert is_safe_rule(rule) == operational, source

    def test_corpus_is_safe(self):
        for case in DEDUCTIVE_CORPUS.values():
            assert is_safe_program(case.program), case.name

    def test_unsafe_rules_listing(self):
        program = parse_program("p(X) :- e(X).\nq(X) :- not e(X).")
        assert len(unsafe_rules(program)) == 1


class TestMakeSafe:
    def test_guards_added(self):
        program = parse_program("q(X) :- not p(X).")
        universe = Universe([Atom("a"), Atom("b")])
        safe = make_safe(program, universe)
        assert is_safe_program(safe)
        guarded = safe.rules[0]
        assert guarded.body[0].atom.predicate == DOMAIN_PREDICATE

    def test_safe_rules_untouched(self):
        program = parse_program("p(X) :- e(X).")
        safe = make_safe(program, Universe([Atom("a")]))
        assert safe.rules[0].body[0].atom.predicate == "e"

    def test_equivalence_on_window(self):
        """Prop 4.2: the guarded query answers the d.i. query on the window."""
        program = parse_program("q(X) :- not p(X).")
        universe = Universe([Atom("a"), Atom("b"), Atom("c")])
        safe = make_safe(program, universe)
        db = Database().add("p", Atom("a"))
        result = run(safe, db, semantics="stratified")
        assert result.true_rows("q") == {(Atom("b"),), (Atom("c"),)}

    def test_domain_program(self):
        facts = domain_program(Universe([1, 2]))
        assert len(facts) == 2
        assert all(rule.is_fact() for rule in facts)

    def test_make_safe_preserves_stratified_corpus(self):
        """Guarding an already-safe stratified program changes nothing."""
        case = DEDUCTIVE_CORPUS["unreachable"]
        from repro.corpus import chain, edges_to_database

        db = edges_to_database(chain(4))
        universe = Universe(db.active_domain())
        safe = make_safe(case.program, universe)
        before = run(case.program, db, semantics="wellfounded")
        after = run(safe, db, semantics="wellfounded")
        for predicate in case.predicates:
            assert before.true_rows(predicate) == after.true_rows(predicate)
