"""Pretty-printer round trips for deductive programs."""

import pytest

from repro.corpus import DEDUCTIVE_CORPUS
from repro.datalog.parser import parse_program
from repro.datalog.pretty import pretty_program, pretty_rule, pretty_value
from repro.relations import Atom, Tup, fset


@pytest.mark.parametrize("name", sorted(DEDUCTIVE_CORPUS))
def test_corpus_round_trips(name):
    program = DEDUCTIVE_CORPUS[name].program
    reparsed = parse_program(pretty_program(program))
    assert reparsed.rules == program.rules


def test_pretty_value_forms():
    assert pretty_value(True) == "true"
    assert pretty_value(3) == "3"
    assert pretty_value("a'b") == "'a\\'b'"
    assert pretty_value(Atom("x")) == "x"
    assert pretty_value(Tup((1, Atom("a")))) == "[1, a]"


def test_pretty_value_set_rendering():
    assert pretty_value(fset(1)) == "{1}"


def test_pretty_rule_fact():
    program = parse_program("p(a, 1).")
    assert pretty_rule(program.rules[0]) == "p(a, 1)."


def test_pretty_negative_and_comparison():
    source = "p(X) :- q(X), not r(X), X <= 3."
    program = parse_program(source)
    assert pretty_rule(program.rules[0]) == source


def test_program_name_as_comment():
    program = parse_program("p.", name="demo")
    assert pretty_program(program).startswith("% demo")
