"""Unit tests for the extensional database."""

import pytest

from repro.datalog.database import Database
from repro.relations import Atom, Relation, fset, tup

a, b = Atom("a"), Atom("b")


class TestFacts:
    def test_add_and_holds(self):
        db = Database().add("p", a, b)
        assert db.holds("p", a, b)
        assert not db.holds("p", b, a)

    def test_arity_consistency(self):
        db = Database().add("p", a)
        with pytest.raises(ValueError):
            db.add("p", a, b)

    def test_rejects_non_values(self):
        with pytest.raises(TypeError):
            Database().add("p", object())

    def test_rows(self):
        db = Database().add("p", a).add("p", b)
        assert db.rows("p") == {(a,), (b,)}
        assert db.rows("missing") == frozenset()

    def test_fact_count(self):
        db = Database().add("p", a).add("q", a, b)
        assert db.fact_count() == 2

    def test_mapping_constructor(self):
        db = Database({"p": [(a,), (b,)]})
        assert db.rows("p") == {(a,), (b,)}

    def test_remove_is_symmetric_with_add(self):
        db = Database().add("p", a, b)
        assert db.remove("p", a, b) is db
        assert not db.holds("p", a, b)
        assert "p" in db  # schema survives the last fact

    def test_remove_missing_raises(self):
        db = Database().add("p", a)
        with pytest.raises(KeyError):
            db.remove("p", b)
        with pytest.raises(KeyError):
            db.remove("q", a)

    def test_discard_is_silent(self):
        db = Database().add("p", a)
        assert db.discard("p", b) is db
        assert db.discard("q", a) is db
        db.discard("p", a)
        assert not db.holds("p", a)

    def test_fingerprint_tracks_content(self):
        db = Database().add("p", a).add("q", a, b)
        before = db.fingerprint()
        assert before == db.copy().fingerprint()
        db.add("p", b)
        changed = db.fingerprint()
        assert changed != before
        db.remove("p", b)
        assert db.fingerprint() == before

    def test_fingerprint_is_memoized(self):
        db = Database().add("p", a)
        digest = db.fingerprint()
        assert db._fingerprint == digest  # stored, not recomputed
        assert db.fingerprint() is db._fingerprint

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda db: db.add("p", b),
            lambda db: db.remove("p", a),
            lambda db: db.discard("p", a),
            lambda db: db.declare("fresh"),
        ],
        ids=["add", "remove", "discard", "declare"],
    )
    def test_mutators_invalidate_memoized_fingerprint(self, mutate):
        db = Database().add("p", a)
        before = db.fingerprint()
        mutate(db)
        assert db._fingerprint is None
        assert db.fingerprint() != before

    def test_noop_discard_keeps_memoized_fingerprint(self):
        db = Database().add("p", a)
        digest = db.fingerprint()
        db.discard("p", b)  # absent fact: content unchanged
        assert db._fingerprint == digest

    def test_copy_preserves_memoized_fingerprint(self):
        db = Database().add("p", a).add("q", a, b)
        digest = db.fingerprint()
        clone = db.copy()
        assert clone._fingerprint == digest  # no recompute needed
        assert clone.fingerprint() == digest
        # ... and the copies invalidate independently.
        clone.add("p", b)
        assert clone._fingerprint is None
        assert db._fingerprint == digest
        assert db.fingerprint() == digest

    def test_with_relation_invalidates_fingerprint(self):
        db = Database().add("p", a)
        before = db.fingerprint()
        extended = db.with_relation(Relation.of(name="R"))
        assert extended.fingerprint() != before

    def test_copy_independent(self):
        db = Database().add("p", a)
        clone = db.copy().add("p", b)
        assert len(db.rows("p")) == 1
        assert len(clone.rows("p")) == 2

    def test_declare_empty_predicate(self):
        db = Database().declare("empty_pred")
        assert "empty_pred" in db
        assert db.arity("empty_pred") is None


class TestRelations:
    def test_from_relations(self):
        rel = Relation.of(a, b, name="R")
        db = Database.from_relations(rel)
        assert db.holds("R", a)
        assert db.arity("R") == 1

    def test_from_relations_requires_name(self):
        with pytest.raises(ValueError):
            Database.from_relations(Relation.of(a))

    def test_unary_relation_round_trip(self):
        rel = Relation.of(a, b, name="R")
        db = Database.from_relations(rel)
        assert db.unary_relation("R") == rel

    def test_unary_relation_rejects_wider(self):
        db = Database().add("p", a, b)
        with pytest.raises(ValueError):
            db.unary_relation("p")

    def test_with_relation(self):
        db = Database().with_relation(Relation.of(a, name="R"))
        assert db.holds("R", a)


class TestActiveDomain:
    def test_flat(self):
        db = Database().add("p", a).add("q", 1, 2)
        assert db.active_domain() == {a, 1, 2}

    def test_deep_opens_tuples_and_sets(self):
        db = Database().add("p", tup(a, fset(1)))
        domain = db.active_domain(deep=True)
        assert {a, 1, fset(1), tup(a, fset(1))} <= domain

    def test_shallow(self):
        db = Database().add("p", tup(a, b))
        assert db.active_domain(deep=False) == {tup(a, b)}


def test_iteration_and_pretty():
    db = Database().add("p", a).add("q", b)
    listed = list(db)
    assert ("p", (a,)) in listed and ("q", (b,)) in listed
    assert "p(a)." in db.pretty()
