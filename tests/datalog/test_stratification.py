"""Unit tests for stratification analysis."""

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_program
from repro.datalog.stratification import (
    NotStratifiedError,
    dependency_graph,
    is_locally_stratified,
    is_stratified,
    negative_edges,
    strata_partition,
    stratify,
)


class TestDependencyGraph:
    def test_edges_and_polarity(self):
        program = parse_program("p(X) :- q(X), not r(X).")
        graph = dependency_graph(program)
        assert graph.has_edge("q", "p")
        assert not graph["q"]["p"]["negative"]
        assert graph["r"]["p"]["negative"]

    def test_negative_wins_on_mixed_edges(self):
        program = parse_program("p(X) :- q(X).\np(X) :- e(X), not q(X).")
        graph = dependency_graph(program)
        assert graph["q"]["p"]["negative"]
        assert negative_edges(graph) == [("q", "p")]


class TestIsStratified:
    def test_positive_recursion_is_stratified(self):
        assert is_stratified(DEDUCTIVE_CORPUS["transitive-closure"].program)

    def test_negation_below_recursion_is_stratified(self):
        assert is_stratified(DEDUCTIVE_CORPUS["unreachable"].program)

    def test_win_move_not_stratified(self):
        assert not is_stratified(DEDUCTIVE_CORPUS["win-move"].program)

    def test_corpus_flags_accurate(self):
        for case in DEDUCTIVE_CORPUS.values():
            assert is_stratified(case.program) == case.stratified, case.name


class TestStratify:
    def test_levels_increase_through_negation(self):
        strata = stratify(DEDUCTIVE_CORPUS["unreachable"].program)
        assert strata["unreach"] > strata["tc"]
        assert strata["tc"] == strata["move"] == 0

    def test_double_negation_two_jumps(self):
        program = parse_program(
            "a(X) :- e(X).\nb(X) :- e(X), not a(X).\nc(X) :- e(X), not b(X)."
        )
        strata = stratify(program)
        assert strata["a"] < strata["b"] < strata["c"]

    def test_raises_for_unstratified(self):
        with pytest.raises(NotStratifiedError):
            stratify(DEDUCTIVE_CORPUS["win-move"].program)

    def test_partition_shape(self):
        partition = strata_partition(DEDUCTIVE_CORPUS["unreachable"].program)
        assert len(partition) == 2
        assert "unreach" in partition[1]


class TestLocalStratification:
    def test_win_acyclic_is_locally_stratified(self):
        """Example 3: 'If the MOVE relation is acyclic then the valid
        interpretation is 2-valued' — acyclic grounds locally stratified."""
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(chain(5)))
        assert is_locally_stratified(gp)

    def test_win_cyclic_not_locally_stratified(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(cycle(3)))
        assert not is_locally_stratified(gp)

    def test_stratified_programs_ground_locally_stratified(self):
        program = DEDUCTIVE_CORPUS["unreachable"].program
        gp = ground(program, edges_to_database(cycle(4)))
        assert is_locally_stratified(gp)
