"""Unit tests: well-founded, valid, and stable semantics."""

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, random_graph
from repro.datalog import Database, ground
from repro.datalog.parser import parse_program
from repro.datalog.semantics import (
    Truth,
    TooManyChoiceAtoms,
    alternating_fixpoint_trace,
    inflationary_fixpoint,
    is_stable_model,
    stable_models,
    valid_computation_trace,
    valid_model,
    well_founded_model,
)
from repro.relations import Atom

a, b, c = Atom("a"), Atom("b"), Atom("c")


class TestWellFounded:
    def test_win_chain(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(chain(4)))
        wfs = well_founded_model(gp)
        wins = wfs.true_rows(gp, "win")
        assert wins == {(Atom("n0"),), (Atom("n2"),)}
        assert wfs.is_total_for(gp)

    def test_self_loop_undefined(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, Database().add("move", a, a))
        wfs = well_founded_model(gp)
        assert wfs.undefined_rows(gp, "win") == {(a,)}

    def test_even_cycle_undefined(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(cycle(2)))
        wfs = well_founded_model(gp)
        assert len(wfs.undefined_rows(gp, "win")) == 2

    def test_odd_cycle_with_escape(self):
        # a→b→c→a plus c→d: d loses, so c wins, so b loses, so a wins.
        program = DEDUCTIVE_CORPUS["win-move"].program
        db = edges_to_database(cycle(3)).add("move", Atom("n2"), Atom("d"))
        gp = ground(program, db)
        wfs = well_founded_model(gp)
        assert wfs.true_rows(gp, "win") == {(Atom("n2"),), (Atom("n0"),)}
        assert wfs.is_total_for(gp)

    def test_alternating_trace_monotone(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(random_graph(6, 0.3, seed=3)))
        trace = alternating_fixpoint_trace(gp)
        for (t1, o1), (t2, o2) in zip(trace, trace[1:]):
            assert t1 <= t2
            assert o2 <= o1


class TestValid:
    def test_matches_wellfounded_on_corpus(self):
        """The Section 2.2 computation and the independent alternating
        fixpoint implementation agree program by program."""
        from repro.core.algebra_to_datalog import translation_registry

        registry = translation_registry()
        for case in DEDUCTIVE_CORPUS.values():
            if case.uses_functions:
                continue
            for edges in (chain(5), cycle(4), random_graph(5, 0.35, seed=7)):
                gp = ground(case.program, edges_to_database(edges), registry=registry)
                assert valid_model(gp).agrees_with(well_founded_model(gp)), case.name

    def test_false_set_grows(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(chain(5)))
        steps = valid_computation_trace(gp)
        for earlier, later in zip(steps, steps[1:]):
            assert earlier.false <= later.false
            assert earlier.true <= later.true

    def test_example4_valid_undefined(self):
        """Example 4: under valid semantics Q(a) is neither true nor false."""
        program = parse_program("r(a).\nq(X) :- r(X), not q(X).")
        gp = ground(program, Database())
        interp = valid_model(gp)
        assert interp.value_of(gp.atom_id("q", (a,))) is Truth.UNDEFINED

    def test_three_valued_accessors(self):
        program = parse_program("p :- not q.\nq :- not p.\nr :- p.\nr :- q.")
        gp = ground(program, Database())
        interp = valid_model(gp)
        assert interp.undefined_rows(gp, "p") == {()}
        assert interp.undefined_rows(gp, "r") == {()}
        assert not interp.is_total_for(gp)


class TestStable:
    def test_choice_program_two_models(self):
        program = parse_program("p :- not q.\nq :- not p.")
        gp = ground(program, Database())
        models = stable_models(gp)
        assert len(models) == 2
        names = [
            {gp.decode(atom)[0] for atom in model.true} for model in models
        ]
        assert {"p"} in names and {"q"} in names

    def test_odd_loop_no_models(self):
        program = parse_program("p :- not p.")
        gp = ground(program, Database())
        assert stable_models(gp) == []

    def test_stratified_unique_model(self):
        case = DEDUCTIVE_CORPUS["unreachable"]
        gp = ground(case.program, edges_to_database(chain(4)))
        models = stable_models(gp)
        assert len(models) == 1
        assert models[0].true == well_founded_model(gp).true

    def test_wfs_true_in_every_stable_model(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(random_graph(5, 0.4, seed=5)))
        wfs = well_founded_model(gp)
        for model in stable_models(gp):
            assert wfs.true <= model.true
            assert not (wfs.false & model.true)

    def test_is_stable_model_checker(self):
        program = parse_program("p :- not q.\nq :- not p.")
        gp = ground(program, Database())
        p_id = gp.atom_id("p", ())
        q_id = gp.atom_id("q", ())
        assert is_stable_model(gp, frozenset({p_id}))
        assert not is_stable_model(gp, frozenset({p_id, q_id}))
        assert not is_stable_model(gp, frozenset())

    def test_choice_budget(self):
        rules = "\n".join(
            f"p{i} :- not q{i}.\nq{i} :- not p{i}." for i in range(12)
        )
        gp = ground(parse_program(rules), Database())
        with pytest.raises(TooManyChoiceAtoms):
            stable_models(gp, max_choice_atoms=4)

    def test_win_even_cycle_two_stable_models(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        gp = ground(program, edges_to_database(cycle(2)))
        models = stable_models(gp)
        assert len(models) == 2
