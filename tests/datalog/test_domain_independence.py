"""Unit tests for the domain-independence module (Section 4)."""

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, edges_to_database
from repro.datalog.domain_independence import (
    appears_domain_independent,
    is_safe_hence_di,
)
from repro.datalog.parser import parse_program
from repro.datalog import Database
from repro.relations import Atom


class TestSyntacticSide:
    def test_corpus_is_safe_hence_di(self):
        for case in DEDUCTIVE_CORPUS.values():
            assert is_safe_hence_di(case.program), case.name

    def test_unsafe_flagged(self):
        assert not is_safe_hence_di(parse_program("q(X) :- not p(X)."))


class TestEmpiricalOracle:
    def test_safe_query_stable_across_windows(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        probe = appears_domain_independent(
            program, edges_to_database(chain(4)), paddings=(0, 3, 7)
        )
        assert probe.stable
        assert probe.first_divergence() is None

    def test_domain_dependent_query_diverges(self):
        """The paper's own example: Q(x) ← ¬R(x) 'changes if the domain
        of x is changed'."""
        program = parse_program("q(X) :- not r(X).")
        database = Database().add("r", Atom("a"))
        probe = appears_domain_independent(program, database, paddings=(0, 2, 5))
        assert not probe.stable
        divergence = probe.first_divergence()
        assert divergence is not None
        assert divergence[1] == "q"

    def test_windows_recorded(self):
        program = parse_program("p(X) :- e(X).")
        database = Database().add("e", Atom("a"))
        probe = appears_domain_independent(program, database, paddings=(0, 2))
        assert probe.windows == (1, 3)
        assert len(probe.answers) == 2

    def test_stratified_negation_is_di(self):
        program = DEDUCTIVE_CORPUS["unreachable"].program
        probe = appears_domain_independent(
            program, edges_to_database(chain(4)), paddings=(0, 4)
        )
        assert probe.stable

    def test_three_valued_semantics_supported(self):
        program = DEDUCTIVE_CORPUS["win-move"].program
        probe = appears_domain_independent(
            program,
            edges_to_database(chain(3)),
            paddings=(0, 2),
            semantics="valid",
        )
        assert probe.stable
