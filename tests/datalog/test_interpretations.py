"""Unit tests for truth values and interpretations."""

import pytest

from repro.datalog import Database, ground
from repro.datalog.parser import parse_program
from repro.datalog.semantics.interpretations import Interpretation, Truth
from repro.relations import Atom

a = Atom("a")


class TestTruth:
    def test_negate(self):
        assert Truth.TRUE.negate() is Truth.FALSE
        assert Truth.FALSE.negate() is Truth.TRUE
        assert Truth.UNDEFINED.negate() is Truth.UNDEFINED

    def test_meet_is_kleene_and(self):
        assert Truth.meet(Truth.TRUE, Truth.UNDEFINED) is Truth.UNDEFINED
        assert Truth.meet(Truth.FALSE, Truth.UNDEFINED) is Truth.FALSE
        assert Truth.meet(Truth.TRUE, Truth.TRUE) is Truth.TRUE

    def test_join_is_kleene_or(self):
        assert Truth.join(Truth.TRUE, Truth.UNDEFINED) is Truth.TRUE
        assert Truth.join(Truth.FALSE, Truth.UNDEFINED) is Truth.UNDEFINED
        assert Truth.join(Truth.FALSE, Truth.FALSE) is Truth.FALSE

    def test_de_morgan(self):
        for left in Truth:
            for right in Truth:
                assert Truth.meet(left, right).negate() == Truth.join(
                    left.negate(), right.negate()
                )


class TestInterpretation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Interpretation(frozenset({1}), frozenset({1}))

    def test_total_constructor(self):
        interp = Interpretation.total({0, 2}, atom_count=4)
        assert interp.value_of(0) is Truth.TRUE
        assert interp.value_of(1) is Truth.FALSE
        assert interp.value_of(3) is Truth.FALSE

    def test_three_valued_constructor(self):
        interp = Interpretation.three_valued({0}, {1})
        assert interp.value_of(2) is Truth.UNDEFINED

    def test_agrees_with(self):
        one = Interpretation.three_valued({0}, {1})
        same = Interpretation.three_valued({0}, {1})
        other = Interpretation.three_valued({0}, set())
        assert one.agrees_with(same)
        assert not one.agrees_with(other)

    def test_row_accessors_against_program(self):
        program = parse_program("p(X) :- e(X), not q(X).\nq(X) :- f(X).")
        gp = ground(program, Database().add("e", a).add("f", a))
        from repro.datalog.semantics import valid_model

        interp = valid_model(gp)
        assert interp.true_rows(gp, "e") == {(a,)}
        assert interp.false_rows(gp, "p") == {(a,)}
        assert interp.undefined_rows(gp, "p") == frozenset()
        assert interp.is_total_for(gp)

    def test_undefined_in(self):
        program = parse_program("p :- not p.")
        gp = ground(program, Database())
        from repro.datalog.semantics import valid_model

        interp = valid_model(gp)
        assert interp.undefined_in(gp) == {gp.atom_id("p", ())}
