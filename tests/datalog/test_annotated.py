"""Unit tests for the semiring-annotated evaluator (K-relations).

Complement to the property suite (``tests/property/test_semiring_laws``):
fixed, readable scenarios per shipped semiring — tropical shortest
paths, naturals derivation counting and its documented divergence on
cyclic derivation spaces, why-provenance witnesses, and the boolean
negation gate.
"""

import math

import pytest

from repro.datalog import run
from repro.datalog.annotated import (
    WeightedEvaluator,
    annotated_model,
    edb_annotations,
)
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.robustness import BudgetExceeded
from repro.semiring import SEMIRINGS, get_semiring

TC = parse_program(
    "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."
)
HOP = parse_program("hop(X, Z) :- edge(X, Y), edge(Y, Z).")

A, B, C, D = Atom("a"), Atom("b"), Atom("c"), Atom("d")


def _chain(*pairs, annotations=None):
    database = Database()
    database.declare("edge")
    annotations = annotations or {}
    for pair in pairs:
        database.add("edge", *pair, annotation=annotations.get(pair))
    return database


@pytest.mark.parametrize("name", sorted(SEMIRINGS))
def test_support_matches_boolean_engine(name):
    """The non-zero rows of the annotated model coincide with the
    boolean least model, whatever the semiring (no zero-divisors)."""
    database = _chain((A, B), (B, C), (C, A))  # a cycle, worst case
    semiring = get_semiring(name)
    if name == "naturals":
        # Bag semantics diverges on cyclic derivation spaces; compare
        # on the acyclic program instead.
        model = annotated_model(HOP, database, semiring)
        oracle = run(HOP, _chain((A, B), (B, C), (C, A)))
        assert set(model["hop"]) == oracle.true_rows("hop")
        return
    model = annotated_model(TC, database, semiring)
    oracle = run(TC, _chain((A, B), (B, C), (C, A)))
    assert set(model["tc"]) == oracle.true_rows("tc")


def test_tropical_computes_shortest_paths():
    database = _chain(
        (A, B), (B, C), (A, C),
        annotations={(A, B): 1, (B, C): 1, (A, C): 5},
    )
    model = annotated_model(TC, database, get_semiring("tropical"))
    # Direct a→c costs 5 but the two-hop route costs 2: min wins.
    assert model["tc"][(A, C)] == 2
    assert model["tc"][(A, B)] == 1
    # Tropical from_edb defaults to the semiring one (cost 0): an
    # unweighted edge is free.
    free = annotated_model(TC, _chain((A, B), (B, C)), get_semiring("tropical"))
    assert free["tc"][(A, C)] == 0


def test_tropical_cycle_converges_bellman_ford():
    database = _chain(
        (A, B), (B, A), annotations={(A, B): 2, (B, A): 3}
    )
    model = annotated_model(TC, database, get_semiring("tropical"))
    # Going around the cycle only adds weight; the fixpoint keeps the
    # cheapest (simple-path) costs.
    assert model["tc"][(A, A)] == 5
    assert model["tc"][(A, B)] == 2


def test_naturals_counts_derivations():
    # Two distinct derivations of hop(a, c): via b and via d.
    database = _chain((A, B), (B, C), (A, D), (D, C))
    model = annotated_model(HOP, database, get_semiring("naturals"))
    assert model["hop"][(A, C)] == 2
    # Explicit multiplicities multiply through the rule body.
    weighted = _chain(
        (A, B), (B, C), annotations={(A, B): 3, (B, C): 2}
    )
    model = annotated_model(HOP, weighted, get_semiring("naturals"))
    assert model["hop"][(A, C)] == 6


def test_naturals_diverges_on_cyclic_derivations():
    """A cycle gives every tc row infinitely many derivations: no
    finite bag annotation exists, and the round cap must surface that
    as BudgetExceeded rather than looping."""
    database = _chain((A, B), (B, A))
    with pytest.raises(BudgetExceeded):
        annotated_model(
            TC, database, get_semiring("naturals"), max_rounds=50
        )


def test_why_provenance_collects_witnesses():
    database = _chain((A, B), (B, C), (A, C))
    model = annotated_model(TC, database, get_semiring("why"))
    witnesses = model["tc"][(A, C)]
    # Two minimal witnesses: the direct edge, and the two-hop route.
    assert frozenset({"edge(a, c)"}) in witnesses
    assert frozenset({"edge(a, b)", "edge(b, c)"}) in witnesses
    # Base facts witness themselves.
    assert model["edge"][(A, B)] == frozenset({frozenset({"edge(a, b)"})})


def test_negation_is_a_boolean_gate():
    """Negative literals gate derivations without contributing weight:
    only positive support is tracked (standard why-provenance rule)."""
    program = parse_program(
        """
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- tc(X, Y), edge(Y, Z).
        sink(X) :- node(X), not out(X).
        out(X) :- edge(X, Y).
        """
    )
    database = _chain((A, B), (B, C), annotations={(A, B): 4, (B, C): 4})
    database.declare("node")
    for node in (A, B, C):
        database.add("node", node)
    model = annotated_model(program, database, get_semiring("tropical"))
    # c has no outgoing edge: sink(c) holds, at the weight of its
    # positive support (node(c), unannotated → one = 0) only.
    assert model["sink"] == {(C,): 0}
    # The boolean oracle agrees on the support.
    oracle = run(program, _chain((A, B), (B, C)).add("node", A)
                 .add("node", B).add("node", C))
    assert set(model["sink"]) == oracle.true_rows("sink")


def test_edb_annotations_drop_zero_rows():
    semiring = get_semiring("naturals")
    database = _chain((A, B), (B, C), annotations={(A, B): 0})
    maps = edb_annotations(database, semiring)
    assert (A, B) not in maps["edge"]  # multiplicity 0 == absent
    assert maps["edge"][(B, C)] == 1


def test_weighted_evaluator_reads_pluggable_sources():
    """The RowSource hook: substituting a per-position map (the delta
    discipline's contract) changes which rows a match literal sees."""
    semiring = get_semiring("naturals")
    evaluator = WeightedEvaluator(None, semiring)
    rule = HOP.rules[0]
    from repro.datalog.grounding import compiled_binding_order

    order = compiled_binding_order(rule)
    full = {(A, B): 1, (B, C): 1}
    delta = {(B, C): 1}

    def source(index, literal):
        return delta if index == 0 else full

    produced = evaluator.fire(rule, order, source)
    # Position 0 restricted to the delta row: only b→c→? joins fire,
    # and none complete (no edge out of c), so nothing is produced.
    assert produced == []

    def source_second(index, literal):
        return delta if index == 1 else full

    produced = evaluator.fire(rule, order, source_second)
    assert produced == [((A, C), 1)]
