"""Unit tests for the engine front door."""

import pytest

from repro.corpus import chain, edges_to_database
from repro.datalog import Database, run
from repro.datalog.parser import parse_program
from repro.datalog.semantics import Truth
from repro.relations import Atom, standard_registry

a, b = Atom("a"), Atom("b")


def test_semantics_validated():
    with pytest.raises(ValueError, match="unknown semantics"):
        run(parse_program("p."), semantics="mystery")


def test_all_semantics_run_on_stratified():
    program = parse_program("p(X) :- e(X), not q(X).\nq(X) :- f(X).")
    db = Database().add("e", a).add("e", b).add("f", b)
    answers = {
        semantics: run(program, db, semantics=semantics).true_rows("p")
        for semantics in ("stratified", "inflationary", "wellfounded", "valid")
    }
    for semantics in ("stratified", "wellfounded", "valid"):
        assert answers[semantics] == {(a,)}
    # Inflationary reads ¬q(b) as "q(b) not derived so far" and fires the
    # p rule in round one, before q(b) appears — a genuine divergence.
    assert answers["inflationary"] == {(a,), (b,)}


def test_truth_of_irrelevant_atom_is_false():
    result = run(parse_program("p(X) :- e(X)."), Database().add("e", a))
    assert result.truth_of("p", Atom("zzz")) is Truth.FALSE


def test_truth_of_three_values():
    result = run(parse_program("p :- not q.\nq :- not p.\nt."), Database())
    assert result.truth_of("t") is Truth.TRUE
    assert result.truth_of("p") is Truth.UNDEFINED


def test_unary_relation_export():
    program = parse_program("win(X) :- move(X, Y), not win(Y).")
    result = run(program, edges_to_database(chain(4)))
    relation = result.unary_relation("win")
    assert relation.name == "win"
    assert len(relation) == 2


def test_registry_passthrough():
    program = parse_program("n(0).\nn(Y) :- n(X), Y = succ(X), Y <= 3.")
    result = run(program, Database(), registry=standard_registry())
    assert result.true_rows("n") == {(0,), (1,), (2,), (3,)}


def test_is_total():
    total = run(parse_program("p."), Database())
    assert total.is_total()
    partial = run(parse_program("p :- not p."), Database())
    assert not partial.is_total()
