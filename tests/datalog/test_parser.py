"""Unit tests for the Datalog surface parser."""

import pytest

from repro.datalog.ast import Comparison, Const, FuncTerm, Literal, Var
from repro.datalog.parser import ParseError, parse_program, parse_rule, parse_term
from repro.relations import Atom, Tup


class TestTerms:
    def test_variable(self):
        assert parse_term("X") == Var("X")
        assert parse_term("_tmp") == Var("_tmp")

    def test_atom_constant(self):
        assert parse_term("abc") == Const(Atom("abc"))

    def test_integer(self):
        assert parse_term("42") == Const(42)
        assert parse_term("-3") == Const(-3)

    def test_string(self):
        assert parse_term("'hello'") == Const("hello")

    def test_string_escape(self):
        assert parse_term(r"'it\'s'") == Const("it's")

    def test_booleans(self):
        assert parse_term("true") == Const(True)
        assert parse_term("false") == Const(False)

    def test_function_term(self):
        assert parse_term("succ(X)") == FuncTerm("succ", (Var("X"),))

    def test_nested_functions(self):
        term = parse_term("add(succ(X), 1)")
        assert term == FuncTerm("add", (FuncTerm("succ", (Var("X"),)), Const(1)))

    def test_ground_bracket_is_tuple_value(self):
        assert parse_term("[a, 1]") == Const(Tup((Atom("a"), 1)))

    def test_bracket_with_vars_is_tuple_term(self):
        assert parse_term("[X, 1]") == FuncTerm("tuple", (Var("X"), Const(1)))

    def test_empty_tuple(self):
        assert parse_term("[]") == Const(Tup(()))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("X Y")


class TestRules:
    def test_fact(self):
        rule = parse_rule("p(a).")
        assert rule.is_fact()
        assert rule.head.predicate == "p"

    def test_propositional_fact(self):
        assert parse_rule("p.").head.args == ()

    def test_body_with_negation(self):
        rule = parse_rule("win(X) :- move(X, Y), not win(Y).")
        assert len(rule.positive_literals()) == 1
        assert len(rule.negative_literals()) == 1

    def test_comparisons(self):
        rule = parse_rule("p(X) :- q(X), X <= 3, X != 2.")
        ops = [c.op for c in rule.comparisons()]
        assert ops == ["<=", "!="]

    def test_assignment(self):
        rule = parse_rule("p(Y) :- q(X), Y = succ(X).")
        comparison = rule.comparisons()[0]
        assert comparison.op == "="
        assert comparison.right == FuncTerm("succ", (Var("X"),))

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(a)")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("Pred(a).")


class TestPrograms:
    def test_multi_rule_program(self):
        program = parse_program(
            """
            % transitive closure
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- edge(X, Y), tc(Y, Z).
            """
        )
        assert len(program) == 2
        assert program.idb_predicates() == {"tc"}

    def test_comments_ignored(self):
        program = parse_program("% only a comment\np(a). % trailing\n")
        assert len(program) == 1

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_error_position_reported(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("p(a).\n$$$")

    def test_name_attached(self):
        assert parse_program("p.", name="demo").name == "demo"
