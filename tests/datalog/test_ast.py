"""Unit tests for the deductive AST."""

import pytest

from repro.datalog.ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Var,
    eq,
    eval_term,
    fact,
    neg,
    neq,
    pos,
    rule,
    substitute_term,
    term_vars,
)
from repro.relations import Atom, FSet, Tup, standard_registry

X, Y, Z = Var("X"), Var("Y"), Var("Z")


class TestTerms:
    def test_term_vars(self):
        term = FuncTerm("add", (X, FuncTerm("succ", (Y,))))
        assert term_vars(term) == {X, Y}
        assert term_vars(Const(1)) == frozenset()

    def test_substitute(self):
        term = FuncTerm("succ", (X,))
        assert substitute_term(term, {X: Const(1)}) == FuncTerm("succ", (Const(1),))

    def test_eval_const(self):
        assert eval_term(Const(5), {}) == 5

    def test_eval_var(self):
        assert eval_term(X, {X: Atom("a")}) == Atom("a")

    def test_eval_unbound_var_raises(self):
        with pytest.raises(KeyError):
            eval_term(X, {})

    def test_eval_function(self):
        registry = standard_registry()
        term = FuncTerm("add", (X, Const(3)))
        assert eval_term(term, {X: 4}, registry) == 7

    def test_eval_partial_function_is_none(self):
        registry = standard_registry()
        assert eval_term(FuncTerm("pred", (Const(0),)), {}, registry) is None

    def test_eval_structural_tuple(self):
        term = FuncTerm("tuple", (Const(1), X))
        assert eval_term(term, {X: 2}) == Tup((1, 2))

    def test_eval_structural_set(self):
        term = FuncTerm("set", (Const(1), Const(2)))
        assert eval_term(term, {}) == FSet(frozenset({1, 2}))

    def test_eval_unknown_function_raises(self):
        with pytest.raises(KeyError):
            eval_term(FuncTerm("mystery", ()), {}, standard_registry())

    def test_var_name_required(self):
        with pytest.raises(ValueError):
            Var("")


class TestAtomsAndLiterals:
    def test_atom_vars(self):
        atom = PredAtom("p", (X, FuncTerm("succ", (Y,))))
        assert atom.vars() == {X, Y}

    def test_atom_ground(self):
        assert PredAtom("p", (Const(1),)).is_ground()
        assert not PredAtom("p", (X,)).is_ground()

    def test_literal_negation(self):
        literal = pos("p", X)
        assert literal.negated() == neg("p", X)

    def test_comparison_ops_validated(self):
        with pytest.raises(ValueError):
            Comparison("~", X, Y)

    def test_helper_coercion(self):
        literal = pos("p", Atom("a"), 3)
        assert literal.atom.args == (Const(Atom("a")), Const(3))


class TestRules:
    def test_fact(self):
        ground = fact("p", Atom("a"))
        assert ground.is_fact()
        assert not ground.vars()

    def test_fact_must_be_ground(self):
        with pytest.raises(ValueError):
            fact("p", X)

    def test_partitioned_body(self):
        r = rule("h", [X], [pos("p", X), neg("q", X), eq(X, 1), neq(X, 2)])
        assert len(r.positive_literals()) == 1
        assert len(r.negative_literals()) == 1
        assert len(r.comparisons()) == 2

    def test_rule_vars(self):
        r = rule("h", [X], [pos("p", X, Y)])
        assert r.vars() == {X, Y}

    def test_substitute(self):
        r = rule("h", [X], [pos("p", X)])
        ground = r.substitute({X: Const(1)})
        assert ground.head.args == (Const(1),)


class TestProgram:
    def test_idb_edb_split(self):
        program = Program.of(
            rule("tc", [X, Y], [pos("edge", X, Y)]),
            rule("tc", [X, Z], [pos("edge", X, Y), pos("tc", Y, Z)]),
        )
        assert program.idb_predicates() == {"tc"}
        assert program.edb_predicates() == {"edge"}
        assert program.predicates() == {"tc", "edge"}

    def test_rules_for(self):
        program = Program.of(
            rule("a", [], []),
            rule("b", [], []),
            rule("a", [], [pos("b")]),
        )
        assert len(program.rules_for("a")) == 2

    def test_arities(self):
        program = Program.of(rule("p", [X, Y], [pos("q", X), pos("q", Y)]))
        assert program.arities() == {"p": 2, "q": 1}

    def test_inconsistent_arity_rejected(self):
        program = Program.of(rule("p", [X], [pos("p", X, Y), pos("q", Y)]))
        with pytest.raises(ValueError):
            program.arities()

    def test_extend(self):
        program = Program.of(rule("a", [], []))
        extended = program.extend([rule("b", [], [])])
        assert len(extended) == 2
