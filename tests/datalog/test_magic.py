"""Unit tests for the magic-sets / demand transform.

The differential suite (``tests/service/test_demand_differential.py``)
checks demand answers against the materialized oracle through the whole
serving stack; this file tests the transform itself — naming, safety
and stratification of the output, the SIPS bound-set discipline, the
unadorned negation cone, base-fact pickup, and the passthrough cases.
"""

import pytest

from repro.corpus import chain, edges_to_database
from repro.datalog import (
    Database,
    MagicTransformError,
    adorned_name,
    adornment_for,
    magic_name,
    magic_transform,
    run,
    seed_name,
)
from repro.datalog.parser import parse_program
from repro.datalog.safety import is_safe_rule
from repro.datalog.stratification import is_stratified
from repro.relations import Atom

a, b, c, d = Atom("a"), Atom("b"), Atom("c"), Atom("d")

TC = parse_program(
    "tc(X, Y) :- e(X, Y).\n"
    "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
)


def answers(magic, database, bound, semantics="stratified"):
    """Evaluate a demand-driven transform from scratch: seed the bound
    tuple, run, read the adorned answer predicate."""
    assert magic.demand_driven
    seeded = database.add(magic.seed_predicate, *bound)
    result = run(magic.program, seeded, semantics=semantics)
    return result.true_rows(magic.answer_predicate)


def test_adornment_helpers():
    assert adornment_for((a, None)) == "bf"
    assert adornment_for((None, None)) == "ff"
    assert adornment_for((a, b)) == "bb"
    assert adorned_name("tc", "bf") == "tc@bf"
    assert magic_name("tc", "bf") == "m@tc@bf"
    assert seed_name("tc", "bf") == "d@tc@bf"


def test_tc_bf_answers_match_filtered_oracle():
    db = edges_to_database(chain(6))
    magic = magic_transform(TC, "tc", "bf")
    oracle = run(TC, db).true_rows("tc")
    got = answers(magic, db, (Atom("n0"),))
    # Sound: every adorned row is a real row; complete for the demanded
    # constant (the adorned predicate may also hold rows for constants
    # demanded transitively — callers filter by the bound values).
    assert got <= oracle
    assert {r for r in got if r[0] == Atom("n0")} == {
        r for r in oracle if r[0] == Atom("n0")
    }


def test_tc_bf_is_goal_directed():
    # Two disconnected components: demanding "a" must not derive any
    # tuple mentioning the x/y component.
    db = (
        Database()
        .add("e", a, b)
        .add("e", b, c)
        .add("e", Atom("x"), Atom("y"))
    )
    magic = magic_transform(TC, "tc", "bf")
    got = answers(magic, db, (a,))
    # The adorned answer may hold rows for transitively demanded
    # constants (here tc@bf(b, c), demanded by the recursive rule), but
    # never anything from the unreachable component.
    assert {r for r in got if r[0] == a} == {(a, b), (a, c)}
    flat = {value for row in got for value in row}
    assert Atom("x") not in flat and Atom("y") not in flat


def test_output_rules_are_safe_and_stratified():
    program = parse_program(
        "tc(X, Y) :- e(X, Y).\n"
        "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
        "unreach(X, Y) :- node(X), node(Y), not tc(X, Y).\n"
    )
    magic = magic_transform(program, "unreach", "bf")
    assert magic.demand_driven
    for rule_ in magic.program.rules:
        assert is_safe_rule(rule_)
    assert is_stratified(magic.program)


def test_negated_predicate_stays_unadorned():
    program = parse_program(
        "tc(X, Y) :- e(X, Y).\n"
        "tc(X, Z) :- e(X, Y), tc(Y, Z).\n"
        "unreach(X, Y) :- node(X), node(Y), not tc(X, Y).\n"
    )
    magic = magic_transform(program, "unreach", "bf")
    # tc is negated, so it must keep its original (unadorned) rules and
    # never be magic-restricted.
    predicates = magic.program.predicates()
    assert "tc" in predicates
    assert magic_name("tc", "bf") not in predicates
    db = (
        Database()
        .add("node", a).add("node", b).add("node", c)
        .add("e", a, b)
    )
    oracle = run(program, db).true_rows("unreach")
    got = answers(magic, db, (a,))
    assert got <= oracle
    assert {r for r in got if r[0] == a} == {r for r in oracle if r[0] == a}


def test_query_predicate_in_cone_degenerates_to_passthrough():
    # p is negated by q and p is the query predicate: restricting p
    # would flip q, so the transform must decline.
    program = parse_program(
        "p(X) :- e(X).\n"
        "q(X) :- f(X), not p(X).\n"
        "p(X) :- q(X).\n"
    )
    magic = magic_transform(program, "p", "b")
    assert not magic.demand_driven
    assert magic.program is program
    assert magic.answer_predicate == "p"


def test_all_free_pattern_is_passthrough():
    magic = magic_transform(TC, "tc", "ff")
    assert not magic.demand_driven
    assert magic.bound_positions == ()


def test_edb_query_predicate_is_passthrough():
    magic = magic_transform(TC, "e", "bf")
    assert not magic.demand_driven


def test_base_facts_on_idb_predicate_are_picked_up():
    # A fact inserted directly on the IDB predicate tc must appear in
    # the demanded answers (the pickup rule folds ruleless unadorned tc
    # into the adorned copy).
    db = Database().add("e", a, b).add("tc", a, d)
    magic = magic_transform(TC, "tc", "bf")
    got = answers(magic, db, (a,))
    assert (a, d) in got
    assert (a, b) in got


def test_no_tautological_magic_rules():
    magic = magic_transform(TC, "tc", "bf")
    for rule_ in magic.program.rules:
        assert not (
            len(rule_.body) == 1
            and getattr(rule_.body[0], "atom", None) == rule_.head
        )


def test_second_argument_bound_left_linear():
    magic = magic_transform(TC, "tc", "fb")
    assert magic.demand_driven
    db = Database().add("e", a, b).add("e", b, c).add("e", Atom("x"), Atom("y"))
    oracle = run(TC, db).true_rows("tc")
    got = answers(magic, db, (c,))
    assert got <= oracle
    assert {r for r in got if r[1] == c} == {r for r in oracle if r[1] == c}


def test_fully_bound_membership_pattern():
    magic = magic_transform(TC, "tc", "bb")
    db = Database().add("e", a, b).add("e", b, c)
    assert (a, c) in answers(magic, db, (a, c))
    fresh = Database().add("e", a, b).add("e", b, c)
    assert (a, d) not in answers(magic, fresh, (a, d))


def test_nonlinear_same_generation():
    sg = parse_program(
        "sg(X, X) :- person(X).\n"
        "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n"
    )
    people = [Atom(f"p{i}") for i in range(6)]
    db = Database()
    for p in people:
        db = db.add("person", p)
    for child, parent in [(0, 4), (1, 4), (2, 5), (3, 5), (4, 5)]:
        db = db.add("par", people[child], people[parent])
    magic = magic_transform(sg, "sg", "bf")
    oracle = run(sg, db).true_rows("sg")
    got = answers(magic, db, (people[0],))
    assert got <= oracle
    assert {r for r in got if r[0] == people[0]} == {
        r for r in oracle if r[0] == people[0]
    }
    # Goal-directed: strictly fewer derived rows than the full model.
    assert len(got) < len(oracle)


def test_comparison_assignment_binds_through():
    program = parse_program(
        "n(0).\n"
        "n(Y) :- n(X), Y = succ(X), Y <= 5.\n"
        "double(X, Y) :- n(X), Y = add(X, X).\n"
    )
    from repro.relations import standard_registry

    registry = standard_registry()
    magic = magic_transform(program, "double", "bf")
    assert magic.demand_driven
    seeded = Database().add(magic.seed_predicate, 3)
    result = run(
        magic.program, seeded, semantics="stratified", registry=registry
    )
    got = result.true_rows(magic.answer_predicate)
    assert {r for r in got if r[0] == 3} == {(3, 6)}


def test_base_predicates_cover_reads():
    magic = magic_transform(TC, "tc", "bf")
    assert "e" in magic.base_predicates
    assert "tc" in magic.base_predicates  # the pickup rule reads it
    assert magic.seed_predicate not in magic.base_predicates


def test_error_on_bad_adornment_chars():
    with pytest.raises(MagicTransformError):
        magic_transform(TC, "tc", "bx")


def test_error_on_arity_mismatch():
    with pytest.raises(MagicTransformError):
        magic_transform(TC, "tc", "b")


def test_error_on_at_sign_in_predicate_names():
    program = magic_transform(TC, "tc", "bf").program
    with pytest.raises(MagicTransformError):
        magic_transform(program, "tc@bf", "bf")
