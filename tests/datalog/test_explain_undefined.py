"""Unit tests for the undefined-membership diagnostics."""

from repro.corpus import chain, cycle, edges_to_database
from repro.datalog import Database, ground
from repro.datalog.parser import parse_program
from repro.datalog.stratification import explain_undefined
from repro.relations import Atom

WIN = parse_program("win(X) :- move(X, Y), not win(Y).")
a = Atom("a")


def test_self_loop_explained():
    gp = ground(WIN, Database().add("move", a, a))
    cycle_atoms = explain_undefined(gp, gp.atom_id("win", (a,)))
    assert cycle_atoms is not None
    assert cycle_atoms[0] == "win(a)" and cycle_atoms[-1] == "win(a)"


def test_even_cycle_explained():
    gp = ground(WIN, edges_to_database(cycle(2)))
    atom = gp.atom_id("win", (Atom("n0"),))
    cycle_atoms = explain_undefined(gp, atom)
    assert cycle_atoms is not None
    assert "win(n1)" in cycle_atoms


def test_acyclic_has_no_explanation():
    gp = ground(WIN, edges_to_database(chain(4)))
    for atom_id, predicate, _args in gp.atoms():
        if predicate == "win":
            assert explain_undefined(gp, atom_id) is None


def test_unknown_atom_is_none():
    gp = ground(WIN, edges_to_database(chain(3)))
    assert explain_undefined(gp, 10_000) is None


def test_matches_valid_model_verdicts():
    """Atoms the valid model leaves undefined all have a negative-cycle
    explanation (the converse need not hold)."""
    from repro.corpus import random_graph
    from repro.datalog.semantics import valid_model

    gp = ground(WIN, edges_to_database(random_graph(6, 0.3, seed=51)))
    interp = valid_model(gp)
    for atom_id in interp.undefined_in(gp):
        assert explain_undefined(gp, atom_id) is not None
