"""Unit tests for the grounder."""

import pytest

from repro.datalog.ast import Comparison, Const, FuncTerm, Program, Var, eq, fact, neg, pos, rule
from repro.datalog.database import Database
from repro.datalog.grounding import (
    GroundingBudgetExceeded,
    UnsafeRuleError,
    binding_order,
    ground,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.relations import Atom, standard_registry

X, Y, Z = Var("X"), Var("Y"), Var("Z")
a, b, c = Atom("a"), Atom("b"), Atom("c")


class TestBindingOrder:
    def test_simple_join(self):
        order = binding_order(parse_rule("p(X, Z) :- e(X, Y), e(Y, Z)."))
        assert [kind for kind, _item in order] == ["match", "match"]

    def test_negative_literal_deferred(self):
        order = binding_order(parse_rule("p(X) :- not q(X), e(X)."))
        assert [kind for kind, _item in order] == ["match", "negtest"]

    def test_assignment_binds(self):
        order = binding_order(parse_rule("p(Y) :- e(X), Y = succ(X)."))
        assert [kind for kind, _item in order] == ["match", "assign"]

    def test_test_requires_bound_sides(self):
        order = binding_order(parse_rule("p(X) :- e(X), X <= 3."))
        assert [kind for kind, _item in order] == ["match", "test"]

    def test_unsafe_head_var(self):
        with pytest.raises(UnsafeRuleError):
            binding_order(parse_rule("p(X, Y) :- e(X)."))

    def test_unsafe_negation_only(self):
        with pytest.raises(UnsafeRuleError):
            binding_order(parse_rule("p(X) :- not q(X)."))

    def test_unsafe_order_comparison_cannot_bind(self):
        with pytest.raises(UnsafeRuleError):
            binding_order(parse_rule("p(X) :- X <= 3."))

    def test_ground_assignment_is_safe(self):
        order = binding_order(parse_rule("p(X) :- X = succ(0)."))
        assert [kind for kind, _item in order] == ["assign"]

    def test_function_arg_in_positive_literal(self):
        # e(succ(X)) cannot be inverted; X must be bound elsewhere first.
        with pytest.raises(UnsafeRuleError):
            binding_order(parse_rule("p(X) :- e(succ(X))."))
        order = binding_order(parse_rule("p(X) :- d(X), e(succ(X))."))
        assert [kind for kind, _item in order] == ["match", "match"]

    def test_same_literal_binds_its_own_function_arg(self):
        order = binding_order(parse_rule("p(X) :- e(X, succ(X))."))
        assert [kind for kind, _item in order] == ["match"]


class TestGrounding:
    def test_facts_become_rules(self):
        program = Program.of()
        db = Database().add("e", a, b)
        gp = ground(program, db)
        assert gp.atom_count == 1
        assert len(gp.rules) == 1
        assert gp.rules[0].is_fact()

    def test_relevant_instantiation_only(self):
        program = parse_program("p(X) :- e(X).")
        db = Database().add("e", a).add("f", b)
        gp = ground(program, db)
        # p(b) is never derivable, so it should not even be interned.
        assert gp.atom_id("p", (b,)) is None
        assert gp.atom_id("p", (a,)) is not None

    def test_certainly_false_negatives_dropped(self):
        program = parse_program("p(X) :- e(X), not q(X).\nq(X) :- f(X).")
        db = Database().add("e", a)
        gp = ground(program, db)
        (rule_for_p,) = [r for r in gp.rules if gp.decode(r.head)[0] == "p"]
        # q(a) has no possible derivation, so the negative literal is gone.
        assert rule_for_p.neg == ()

    def test_possible_negatives_kept(self):
        program = parse_program("p(X) :- e(X), not q(X).\nq(X) :- e(X).")
        db = Database().add("e", a)
        gp = ground(program, db)
        (rule_for_p,) = [r for r in gp.rules if gp.decode(r.head)[0] == "p"]
        assert len(rule_for_p.neg) == 1

    def test_recursion_grounds_to_fixpoint(self):
        program = parse_program("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).")
        db = Database()
        for s, t in [(a, b), (b, c)]:
            db.add("e", s, t)
        gp = ground(program, db)
        assert gp.complete
        assert gp.atom_id("tc", (a, c)) is not None

    def test_function_budget(self):
        program = parse_program("n(0).\nn(Y) :- n(X), Y = succ(X).")
        with pytest.raises(GroundingBudgetExceeded):
            ground(program, Database(), registry=standard_registry(), max_rounds=50)

    def test_function_budget_tolerated(self):
        program = parse_program("n(0).\nn(Y) :- n(X), Y = succ(X).")
        gp = ground(
            program,
            Database(),
            registry=standard_registry(),
            max_rounds=10,
            require_complete=False,
        )
        assert not gp.complete
        assert gp.atom_id("n", (5,)) is not None

    def test_bounded_function_recursion_completes(self):
        program = parse_program("n(0).\nn(Y) :- n(X), Y = succ(X), Y <= 5.")
        gp = ground(program, Database(), registry=standard_registry())
        assert gp.complete
        assert {args[0] for _i, args in gp.atoms_of("n")} == set(range(6))

    def test_comparison_filtering(self):
        program = parse_program("p(X) :- e(X), X > 1.")
        db = Database().add("e", 1).add("e", 2)
        gp = ground(program, db)
        assert gp.atom_id("p", (2,)) is not None
        assert gp.atom_id("p", (1,)) is None

    def test_incomparable_order_comparison_is_false(self):
        program = parse_program("p(X) :- e(X), X > 1.")
        db = Database().add("e", Atom("z"))
        gp = ground(program, db)
        assert gp.atom_id("p", (Atom("z"),)) is None

    def test_partial_function_drops_instance(self):
        program = parse_program("p(Y) :- e(X), Y = pred(X).")
        db = Database().add("e", 0).add("e", 3)
        gp = ground(program, db, registry=standard_registry())
        assert gp.atom_id("p", (2,)) is not None
        assert {args for _i, args in gp.atoms_of("p")} == {(2,)}

    def test_duplicate_ground_rules_deduped(self):
        program = parse_program("p(X) :- e(X).\np(X) :- e(X).")
        db = Database().add("e", a)
        gp = ground(program, db)
        p_rules = [r for r in gp.rules if gp.decode(r.head)[0] == "p"]
        assert len(p_rules) == 1

    def test_pretty(self):
        program = parse_program("p(X) :- e(X).")
        gp = ground(program, Database().add("e", a))
        text = gp.pretty()
        assert "p(a) :- e(a)." in text
        assert "e(a)." in text
