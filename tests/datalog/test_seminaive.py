"""Unit tests for the direct semi-naive evaluator."""

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, random_graph
from repro.datalog import Database, run
from repro.datalog.parser import parse_program
from repro.datalog.seminaive import seminaive_stratified
from repro.datalog.stratification import NotStratifiedError
from repro.relations import Atom, standard_registry

STRATIFIED = [
    name
    for name, case in DEDUCTIVE_CORPUS.items()
    if case.stratified and not case.uses_functions
]


@pytest.mark.parametrize("name", STRATIFIED)
@pytest.mark.parametrize("edges_name", ["chain", "cycle", "random"])
def test_matches_ground_engine(name, edges_name, registry):
    case = DEDUCTIVE_CORPUS[name]
    edges = {
        "chain": chain(5),
        "cycle": cycle(4),
        "random": random_graph(6, 0.25, seed=61),
    }[edges_name]
    database = edges_to_database(edges)
    direct = seminaive_stratified(case.program, database, registry=registry)
    grounded = run(case.program, database, semantics="stratified", registry=registry)
    for predicate in case.predicates:
        assert direct.get(predicate, frozenset()) == grounded.true_rows(predicate), (
            name,
            predicate,
        )


def test_function_symbols():
    program = parse_program("n(0).\nn(Y) :- n(X), Y = succ(X), Y <= 5.")
    result = seminaive_stratified(program, Database(), registry=standard_registry())
    assert result["n"] == {(i,) for i in range(6)}


def test_negation_across_strata():
    program = parse_program(
        "p(X) :- e(X).\nq(X) :- e(X), not p(X).\nr(X) :- e(X), not q(X)."
    )
    database = Database().add("e", Atom("a"))
    result = seminaive_stratified(program, database)
    assert result["p"] == {(Atom("a"),)}
    assert result.get("q", frozenset()) == frozenset()
    assert result["r"] == {(Atom("a"),)}


def test_rejects_nonstratified():
    with pytest.raises(NotStratifiedError):
        seminaive_stratified(
            DEDUCTIVE_CORPUS["win-move"].program, edges_to_database(chain(3))
        )


def test_unbounded_generation_detected():
    program = parse_program("n(0).\nn(Y) :- n(X), Y = succ(X).")
    with pytest.raises(RuntimeError):
        seminaive_stratified(
            program, Database(), registry=standard_registry(), max_rounds=30
        )


def test_edb_rows_present_in_result():
    database = Database().add("e", Atom("a"))
    result = seminaive_stratified(parse_program("p(X) :- e(X)."), database)
    assert result["e"] == {(Atom("a"),)}
