"""Proposition 3.4: for monotone exp, the recursive equation S = exp(S)
and the inflationary IFP_exp have identical (total) valid behaviour —
MEM(a, S) = T iff MEM(a, IFP_exp) = T, and likewise for F.
"""

import pytest

from repro.core.evaluator import evaluate
from repro.core.expressions import (
    call,
    diff,
    ifp,
    map_,
    product,
    rel,
    select,
    setconst,
    union,
)
from repro.core.funcs import Apply, Arg, Comp, CompareTest, Lit, MkTup
from repro.core.positivity import is_positive_in
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import valid_evaluate
from repro.corpus import chain, cycle, edges_to_relation, random_graph
from repro.datalog.semantics import Truth
from repro.relations import Atom, Relation, standard_registry

a, b = Atom("a"), Atom("b")


def _tc_step():
    return map_(
        select(
            product(rel("MOVE"), rel("x")),
            CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
        ),
        MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
    )


MONOTONE_BODIES = {
    "tc": union(rel("MOVE"), _tc_step()),
    "union-const": union(rel("x"), setconst(a, b)),
    "guarded-growth": union(
        setconst(0),
        select(
            map_(rel("x"), Apply("add2", (Arg(),))),
            CompareTest("<=", Arg(), Lit(12)),
        ),
    ),
    "projection": union(map_(rel("MOVE"), Comp(Arg(), 1)), map_(rel("x"), Arg())),
}


def _compare(body, env, registry):
    """Evaluate S = body(S) (valid) and IFP body (inflationary) and check
    the Proposition 3.4 biconditional on every candidate."""
    program = AlgebraProgram.of(
        Definition("S", (), _substitute_param(body)),
        database_relations=sorted(env),
        dialect=Dialect.ALGEBRA_EQ,
    )
    fixpoint = valid_evaluate(program, env, registry=registry)
    assert fixpoint.is_well_defined()
    inflationary = evaluate(ifp("x", body), env, registry=registry)
    assert set(fixpoint.true["S"]) == set(inflationary.items)
    # FALSE side: everything in the candidate pool but not true is F in
    # both readings.
    for value in fixpoint.candidates["S"]:
        s_truth = fixpoint.truth_of("S", value)
        ifp_truth = Truth.TRUE if value in inflationary else Truth.FALSE
        assert s_truth is ifp_truth


def _substitute_param(body):
    from repro.core.expressions import substitute

    return substitute(body, {"x": call("S")})


@pytest.mark.parametrize("body_name", sorted(MONOTONE_BODIES))
@pytest.mark.parametrize("edges_name", ["chain", "cycle", "random"])
def test_fixpoint_equals_ifp(body_name, edges_name):
    registry = standard_registry()
    body = MONOTONE_BODIES[body_name]
    assert is_positive_in(body, "x")
    edges = {
        "chain": chain(5),
        "cycle": cycle(4),
        "random": random_graph(5, 0.3, seed=17),
    }[edges_name]
    env = {"MOVE": edges_to_relation(edges, "MOVE")}
    _compare(body, env, registry)


def test_contrast_nonmonotone_differs():
    """The paper's own contrast: for exp = {a} − x, IFP gives {a} while
    the equation leaves membership of a undefined."""
    registry = standard_registry()
    body = diff(setconst(a), rel("x"))
    assert not is_positive_in(body, "x")
    inflationary = evaluate(ifp("x", body), {}, registry=registry)
    assert inflationary == Relation.of(a)
    program = AlgebraProgram.of(
        Definition("S", (), diff(setconst(a), call("S"))),
        dialect=Dialect.ALGEBRA_EQ,
    )
    fixpoint = valid_evaluate(program, {}, registry=registry)
    assert fixpoint.truth_of("S", a) is Truth.UNDEFINED
