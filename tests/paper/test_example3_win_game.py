"""Example 3 (Section 3.2): the WIN game.

``WIN = π1(MOVE − (π1(MOVE) × WIN))`` — "all positions in the first
column of MOVE where the next position is not a winning one".  The paper:
acyclic MOVE ⇒ the valid interpretation is 2-valued and an initial valid
model exists; cyclic MOVE (e.g. the tuple [a,a]) ⇒ membership undefined.
"""

import pytest

from repro.corpus import (
    algebra_case,
    binary_tree,
    chain,
    cycle,
    edges_to_relation,
    grid,
    nodes_of,
    random_graph,
)
from repro.core.valid_eval import valid_evaluate
from repro.datalog.semantics import Truth
from repro.relations import Atom, Relation, tup


def game_theoretic_wins(edges):
    """Independent reference: backward induction on the game graph,
    three-valued (None = drawn/undetermined)."""
    moves = {}
    for source, target in edges:
        moves.setdefault(source, set()).add(target)
    positions = set(nodes_of(edges))
    verdict = {}
    changed = True
    while changed:
        changed = False
        for position in positions:
            if position in verdict:
                continue
            succs = moves.get(position, set())
            if any(verdict.get(s) is False for s in succs):
                verdict[position] = True
                changed = True
            elif all(verdict.get(s) is True for s in succs):
                # includes the no-moves case: every (zero) successor wins
                verdict[position] = False
                changed = True
    return verdict


def evaluate_win(edges):
    program = algebra_case("win-game").program
    move = edges_to_relation(edges, "MOVE")
    return valid_evaluate(program, {"MOVE": move})


@pytest.mark.parametrize(
    "edges_factory",
    [
        lambda: chain(6),
        lambda: binary_tree(3),
        lambda: grid(3, 3),
        lambda: random_graph(6, 0.3, seed=42),
        lambda: cycle(5),
        lambda: cycle(4),
    ],
)
def test_matches_backward_induction(edges_factory):
    """The valid interpretation computes exactly game-theoretic truth:
    wins true, losses false, draws undefined."""
    edges = edges_factory()
    reference = game_theoretic_wins(edges)
    result = evaluate_win(edges)
    for position in nodes_of(edges):
        # Only movers are WIN-candidates; non-movers are certainly false.
        expected = reference.get(position)
        actual = result.truth_of("WIN", position)
        if expected is True:
            assert actual is Truth.TRUE, position
        elif expected is False:
            assert actual is Truth.FALSE, position
        else:
            assert actual is Truth.UNDEFINED, position


def test_acyclic_is_two_valued():
    """'If the MOVE relation is acyclic then the valid interpretation is
    2-valued, and an initial valid model exists.'"""
    for edges in (chain(7), binary_tree(3), grid(3, 4)):
        assert evaluate_win(edges).is_well_defined()


def test_cyclic_self_loop_undefined():
    """'If the MOVE relation contains the tuple [a, a], then the
    membership status of a in WIN will be undefined.'"""
    a = Atom("a")
    result = evaluate_win([(a, a)])
    assert result.truth_of("WIN", a) is Truth.UNDEFINED
    assert not result.is_well_defined()


def test_even_cycle_all_undefined():
    result = evaluate_win(cycle(2))
    assert len(result.undefined_members("WIN")) == 2


def test_cycle_resolved_by_escape():
    """A cycle with a winning escape is fully decided."""
    a, b, c = Atom("a"), Atom("b"), Atom("c")
    result = evaluate_win([(a, b), (b, a), (a, c)])
    # a can move to c (a sink, losing) so a wins; b's only move hits the
    # winning a, so b loses.  Everything is 2-valued.
    assert result.is_well_defined()
    assert result.truth_of("WIN", a) is Truth.TRUE
    assert result.truth_of("WIN", b) is Truth.FALSE
