"""Example 2 and Proposition 2.3: initial valid models of constant-only
specifications.

Example 2's spec (``a ≠ b → a = c``, ``a ≠ c → a = b``) has exactly three
valid models — all-merged, {a,b|c}, {a,c|b} — none of which is initial:
"the symmetry in the two given conditional equations leads a
non-deterministic choice between two different, non compatible,
algebras".  Proposition 2.3(2) says this is decidable for constant-only
specs, which is what `analyze_constant_spec` implements.
"""

import pytest

from repro.specs import (
    Operation,
    Specification,
    analyze_constant_spec,
    equation,
    refines,
    sapp,
)
from repro.specs.builtins import example2_spec
from repro.specs.equations import EqPremise, NeqPremise


class TestExample2:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_constant_spec(example2_spec())

    def test_three_valid_models(self, analysis):
        assert len(analysis.valid_partitions) == 3

    def test_all_models_are_valid(self, analysis):
        """'All the models of SPEC are valid, since no equalities can be
        derived in a valid manner.'"""
        assert analysis.certainly_equal == frozenset()
        assert set(analysis.valid_partitions) == set(analysis.model_partitions)

    def test_the_exact_three_models(self, analysis):
        blocks = {
            tuple(sorted(tuple(sorted(block)) for block in partition))
            for partition in analysis.valid_partitions
        }
        assert blocks == {
            (("a", "b", "c"),),
            (("a", "b"), ("c",)),
            (("a", "c"), ("b",)),
        }

    def test_none_is_initial(self, analysis):
        assert analysis.initial is None
        # The two two-block models are incomparable, which is why.
        two_block = [p for p in analysis.valid_partitions if len(p) == 2]
        assert len(two_block) == 2
        assert not refines(two_block[0], two_block[1])
        assert not refines(two_block[1], two_block[0])


class TestSymmetryBreaking:
    def test_dropping_one_equation_restores_initiality(self):
        """Without the symmetry, the valid computation decides everything
        and an initial valid model exists."""
        spec = Specification.build(
            "half-example2",
            ["s"],
            [Operation(n, (), "s") for n in "abc"],
            [equation(sapp("a"), sapp("c"), NeqPremise(sapp("a"), sapp("b")))],
        )
        analysis = analyze_constant_spec(spec)
        assert analysis.has_initial_valid_model()
        assert frozenset({"a", "c"}) in analysis.initial

    def test_positive_specs_always_have_initial(self):
        """Without negation every algebra is valid and the classical
        initial model exists (Section 2.2's remark)."""
        for eqs in (
            [],
            [equation(sapp("a"), sapp("b"))],
            [equation(sapp("a"), sapp("b")), equation(sapp("b"), sapp("c"))],
            [equation(sapp("c"), sapp("b"), EqPremise(sapp("a"), sapp("b")))],
        ):
            spec = Specification.build(
                "positive",
                ["s"],
                [Operation(n, (), "s") for n in "abc"],
                eqs,
            )
            analysis = analyze_constant_spec(spec)
            assert analysis.has_initial_valid_model(), eqs

    def test_initial_refines_every_valid_model(self):
        spec = Specification.build(
            "check",
            ["s"],
            [Operation(n, (), "s") for n in "abcd"],
            [equation(sapp("a"), sapp("b"))],
        )
        analysis = analyze_constant_spec(spec)
        assert analysis.initial is not None
        for other in analysis.valid_partitions:
            assert refines(analysis.initial, other)
