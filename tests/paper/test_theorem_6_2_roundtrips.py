"""Theorem 6.2 (with Prop 6.1, Theorem 3.5, Corollary 3.6): the d.i.
deductive language, the safe deductive language, algebra=, and
IFP-algebra= are equivalent.

We certify the equivalence by executable round trips over the corpus:

* deduction → algebra= → evaluate, vs direct deduction (Prop 6.1);
* algebra= → deduction → evaluate, vs the native three-valued
  evaluation (Prop 5.4);
* the double round trip deduction → algebra= → deduction;
* Theorem 3.5 / Corollary 3.6: an IFP-algebra query expressed in
  algebra= (via translate + stage + Prop 6.1) gives the same answers.
"""

import pytest

from repro.core.algebra_to_datalog import (
    translate_expression,
    translate_program,
    translation_registry,
)
from repro.core.datalog_to_algebra import datalog_to_algebra
from repro.core.encoding import database_to_environment, environment_to_database
from repro.core.equivalence import (
    check_algebra_roundtrip,
    check_datalog_roundtrip,
    datalog_answers,
)
from repro.core.evaluator import evaluate
from repro.core.expressions import diff, ifp, rel, setconst
from repro.core.staging import run_staged, stage_program
from repro.core.valid_eval import valid_evaluate
from repro.corpus import (
    ALGEBRA_CORPUS,
    DEDUCTIVE_CORPUS,
    chain,
    cycle,
    edges_to_database,
    edges_to_relation,
    random_graph,
)
from repro.datalog import Database, run
from repro.relations import Atom, Relation

GRAPHS = {
    "chain": chain(5),
    "cycle": cycle(4),
    "random": random_graph(5, 0.35, seed=23),
}


@pytest.fixture(scope="module")
def registry():
    return translation_registry()


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("case_name", sorted(DEDUCTIVE_CORPUS))
def test_deduction_to_algebra_direction(case_name, graph_name, registry):
    case = DEDUCTIVE_CORPUS[case_name]
    database = (
        Database() if case.uses_functions else edges_to_database(GRAPHS[graph_name])
    )
    report = check_datalog_roundtrip(case.program, database, registry=registry)
    assert report.matches, (case_name, report.mismatches())


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("case_name", sorted(ALGEBRA_CORPUS))
def test_algebra_to_deduction_direction(case_name, graph_name, registry):
    case = ALGEBRA_CORPUS[case_name]
    env = {
        "MOVE": edges_to_relation(GRAPHS[graph_name], "MOVE"),
        "A": Relation.of(1, 2, 3, 4, 5, name="A"),
        "B": Relation.of(3, 4, 5, 6, name="B"),
    }
    env = {k: v for k, v in env.items() if k in case.program.database_relations}
    report = check_algebra_roundtrip(case.program, env, registry=registry)
    assert report.matches, (case_name, report.mismatches())


@pytest.mark.parametrize("case_name", ["win-move", "transitive-closure", "choice"])
def test_double_roundtrip(case_name, registry):
    """deduction → algebra= → deduction: answers preserved through both
    translations composed."""
    case = DEDUCTIVE_CORPUS[case_name]
    database = edges_to_database(GRAPHS["random"])
    direct = datalog_answers(case.program, database, registry=registry)

    to_algebra = datalog_to_algebra(case.program)
    back = translate_program(to_algebra.program)
    env = database_to_environment(database)
    for name in to_algebra.program.database_relations:
        env.setdefault(name, Relation([], name=name))
    db2 = environment_to_database(env, {})
    outcome = run(back.program, db2, semantics="valid", registry=registry)

    for predicate in case.predicates:
        mapped = back.predicate_of[predicate]
        assert {r[0] for r in outcome.true_rows(mapped)} == direct[predicate].true
        assert {r[0] for r in outcome.undefined_rows(mapped)} == direct[
            predicate
        ].undefined


class TestTheorem35:
    """IFP-algebra ⊂ algebra= — an IFP query is expressible without IFP."""

    def test_example4_expressed_in_algebra_eq(self, registry):
        a = Atom("a")
        query = ifp("x", diff(setconst(a), rel("x")))
        direct = evaluate(query, {})

        # Route: translate (Prop 5.1) → stage (Prop 5.2) → that staged
        # program is safe deduction → algebra= (Prop 6.1).
        translation = translate_expression(query)
        staged_program = stage_program(translation.program, stage_bound=4)
        to_algebra = datalog_to_algebra(staged_program)
        assert not to_algebra.program.uses_ifp()

        env = database_to_environment(Database())
        for name in to_algebra.program.database_relations:
            env.setdefault(name, Relation([], name=name))
        result = valid_evaluate(to_algebra.program, env, registry=registry)
        assert result.is_well_defined()
        rows = {
            row[0]
            for row in to_algebra.decode_rows(
                result.relation(translation.result_predicate)
            )
        }
        assert rows == set(direct.items)

    def test_proper_inclusion_witness(self):
        """The inclusion is proper: S = {a} − S is an algebra= program
        with no initial valid model, something no IFP-algebra query
        exhibits (Theorem 3.1 guarantees their totality)."""
        from repro.core.expressions import call
        from repro.core.programs import AlgebraProgram, Definition, Dialect

        program = AlgebraProgram.of(
            Definition("S", (), diff(setconst(Atom("a")), call("S"))),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {})
        assert not result.is_well_defined()
