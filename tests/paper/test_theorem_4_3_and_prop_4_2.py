"""Theorem 4.3 and Proposition 4.2: the stratified fragment and safety.

Theorem 4.3: stratified d.i. deduction ≡ stratified safe deduction ≡ the
positive IFP-algebra.  We certify instances in both directions:
stratified corpus programs translate to algebra= programs that are
*total* (stratified programs have 2-valued valid models), and positive
IFP-algebra queries translate to stratified deductive programs.

Proposition 4.2: every d.i. query has an equivalent safe query, and the
construction preserves stratification.
"""

import pytest

from repro.core.algebra_to_datalog import translate_expression, translation_registry
from repro.core.datalog_to_algebra import datalog_to_algebra
from repro.core.encoding import database_to_environment
from repro.core.equivalence import check_datalog_roundtrip
from repro.core.evaluator import evaluate
from repro.core.expressions import ifp, map_, product, rel, select, union
from repro.core.funcs import Arg, Comp, CompareTest, MkTup
from repro.core.positivity import is_positive_ifp_expr
from repro.core.valid_eval import valid_evaluate
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, edges_to_relation
from repro.datalog import Database, run
from repro.datalog.parser import parse_program
from repro.datalog.safety import is_safe_program, make_safe
from repro.datalog.stratification import is_stratified, stratify
from repro.relations import Atom, Relation, Universe

STRATIFIED = [n for n, c in DEDUCTIVE_CORPUS.items() if c.stratified and not c.uses_functions]


@pytest.fixture(scope="module")
def registry():
    return translation_registry()


class TestStratifiedToAlgebra:
    @pytest.mark.parametrize("name", STRATIFIED)
    def test_translation_total_and_equal(self, name, registry):
        """Stratified deduction lands in the total fragment of algebra=."""
        case = DEDUCTIVE_CORPUS[name]
        database = edges_to_database(cycle(4))
        translation = datalog_to_algebra(case.program)
        environment = database_to_environment(database)
        for relation_name in translation.program.database_relations:
            environment.setdefault(relation_name, Relation([], name=relation_name))
        result = valid_evaluate(translation.program, environment, registry=registry)
        assert result.is_well_defined(), name
        report = check_datalog_roundtrip(case.program, database, registry=registry)
        assert report.matches


class TestPositiveIfpToStratified:
    def test_positive_ifp_translates_stratified(self):
        grow = map_(
            select(
                product(rel("MOVE"), rel("x")),
                CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
            ),
            MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
        )
        query = ifp("x", union(rel("MOVE"), grow))
        assert is_positive_ifp_expr(query)
        translation = translate_expression(query)
        assert is_stratified(translation.program)

    def test_stratified_translation_agrees_on_all_semantics(self, registry):
        grow = map_(
            select(
                product(rel("MOVE"), rel("x")),
                CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
            ),
            MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
        )
        query = ifp("x", union(rel("MOVE"), grow))
        move = edges_to_relation(chain(5), "MOVE")
        expected = set(evaluate(query, {"MOVE": move}).items)
        translation = translate_expression(query)
        from repro.core.encoding import environment_to_database

        database = environment_to_database({"MOVE": move}, {})
        for semantics in ("stratified", "inflationary", "wellfounded", "valid"):
            outcome = run(
                translation.program, database, semantics=semantics, registry=registry
            )
            rows = {r[0] for r in outcome.true_rows(translation.result_predicate)}
            assert rows == expected, semantics

    def test_nonpositive_translation_not_stratified(self):
        from repro.core.expressions import diff, setconst

        query = ifp("x", diff(setconst(Atom("a")), rel("x")))
        translation = translate_expression(query)
        assert not is_stratified(translation.program)


class TestProposition42:
    def test_make_safe_preserves_stratification(self):
        """'Moreover, if the first query is stratified, then so is the
        equivalent query.'"""
        unsafe = parse_program(
            "p(X) :- not q(X).\nq(X) :- e(X)."
        )
        universe = Universe([Atom("a"), Atom("b")])
        safe = make_safe(unsafe, universe)
        assert is_safe_program(safe)
        assert is_stratified(safe)
        strata = stratify(safe)
        assert strata["p"] > strata["q"]

    def test_window_equivalence_for_di_query(self):
        """A d.i. query answers identically on any universe containing
        its window — compare two windows."""
        program = parse_program("both(X) :- e(X), f(X).\nonly(X) :- e(X), not f(X).")
        db = Database().add("e", Atom("a")).add("e", Atom("b")).add("f", Atom("b"))
        small = Universe(db.active_domain())
        large = Universe(list(db.active_domain()) + [Atom("z1"), Atom("z2")])
        result_small = run(make_safe(program, small), db, semantics="stratified")
        result_large = run(make_safe(program, large), db, semantics="stratified")
        for predicate in ("both", "only"):
            assert result_small.true_rows(predicate) == result_large.true_rows(predicate)

    def test_domain_dependent_query_differs_across_windows(self):
        """Contrast: a genuinely domain-dependent query changes with the
        window — motivating the restriction to d.i. queries."""
        program = parse_program("comp(X) :- not e(X).")
        db = Database().add("e", Atom("a"))
        small = Universe(db.active_domain())
        large = Universe([Atom("a"), Atom("b")])
        result_small = run(make_safe(program, small), db, semantics="stratified")
        result_large = run(make_safe(program, large), db, semantics="stratified")
        assert result_small.true_rows("comp") != result_large.true_rows("comp")
