"""Theorem 3.1 and Propositions 3.2 / 6.3.

Theorem 3.1: IFP-algebra operations are well-defined — for every set
built with ∪ − × σ MAP IFP over a well-defined database, membership is
*total* in the initial valid model.  We verify this over a generated
family of (deterministically random) IFP-algebra expressions: the valid
evaluation of `Q = expr` is always 2-valued.

Proposition 3.2 (undecidability of well-definedness for algebra=) is of
course not testable as such; we verify its *reduction gadget*:
``S' = σ_{EQ(x,a)}(S) − S'`` has an initial valid model iff ``a ∉ S``.
"""

import random

import pytest

from repro.core.expressions import (
    Expr,
    call,
    diff,
    ifp,
    map_,
    product,
    project,
    rel,
    select,
    setconst,
    union,
)
from repro.core.funcs import Apply, Arg, CompareTest, Lit
from repro.core.positivity import is_positive_ifp_expr
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import valid_evaluate
from repro.datalog.semantics import Truth
from repro.relations import Atom, Relation, standard_registry

a, b, c = Atom("a"), Atom("b"), Atom("c")

BASE_ENV = {
    "A": Relation.of(1, 2, 3, name="A"),
    "B": Relation.of(2, 3, 4, name="B"),
}


def random_expression(rng: random.Random, depth: int) -> Expr:
    """A random IFP-algebra expression over A, B (no recursion — this is
    the IFP-algebra, not algebra=)."""
    if depth == 0:
        return rng.choice([rel("A"), rel("B"), setconst(1, 5), setconst(a)])
    choice = rng.randrange(7)
    child = lambda: random_expression(rng, depth - 1)  # noqa: E731
    if choice == 0:
        return union(child(), child())
    if choice == 1:
        return diff(child(), child())
    if choice == 2:
        return product(child(), child())
    if choice == 3:
        return select(child(), CompareTest("<", Arg(), Lit(4)))
    if choice == 4:
        return map_(child(), Apply("double", (Arg(),)))
    if choice == 5:
        return project(child(), 1)
    # A guarded IFP: union with the parameter, capped growth.
    body = union(
        child(),
        select(
            map_(rel("w"), Apply("succ", (Arg(),))),
            CompareTest("<=", Arg(), Lit(8)),
        ),
    )
    return ifp("w", body)


class TestTheorem31:
    @pytest.mark.parametrize("seed", range(30))
    def test_generated_ifp_algebra_queries_are_total(self, seed):
        rng = random.Random(seed)
        expr = random_expression(rng, 3)
        program = AlgebraProgram.of(
            Definition("Q", (), expr),
            database_relations=sorted(BASE_ENV),
            dialect=Dialect.IFP_ALGEBRA_EQ,
        )
        result = valid_evaluate(program, BASE_ENV, registry=standard_registry())
        assert result.is_well_defined(), repr(expr)

    def test_positive_ifp_subset(self):
        """Sanity: the generator produces positive IFPs (they are inside
        the Theorem 4.3 fragment)."""
        rng = random.Random(7)
        for _ in range(20):
            expr = random_expression(rng, 3)
            assert is_positive_ifp_expr(expr)


class TestProposition32Gadget:
    def _program(self, members):
        return AlgebraProgram.of(
            Definition("S", (), setconst(*members)),
            Definition(
                "Sp",
                (),
                diff(
                    select(call("S"), CompareTest("=", Arg(), Lit(a))),
                    call("Sp"),
                ),
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )

    def test_member_makes_it_undefined(self):
        result = valid_evaluate(self._program([a, b]), {})
        assert not result.is_well_defined()
        assert result.truth_of("Sp", a) is Truth.UNDEFINED

    def test_nonmember_keeps_it_defined(self):
        result = valid_evaluate(self._program([b, c]), {})
        assert result.is_well_defined()
        assert len(result.true["Sp"]) == 0

    def test_reduction_direction(self):
        """has-initial-valid-model(P') iff a ∉ S — both directions over a
        family of S contents."""
        for members in ([a], [b], [a, b, c], [c], []):
            result = valid_evaluate(self._program(members), {})
            assert result.is_well_defined() == (a not in members), members
