"""Example 1 / Example 3: the infinite set of even numbers.

The paper defines S^e three ways — an explicit infinite union via an
auxiliary staging function, the declarative equation ``S^e = S^e ∪ {2i}``,
and the algebra= equation ``S^e = {0} ∪ MAP_{+2}(S^e)``.  All must agree,
and with the Section 2.2 completion, MEM must be *total*: true on evens,
certainly false on odds.
"""

import pytest

from repro.core.expressions import call, map_, select, setconst, union
from repro.core.funcs import Apply, Arg, CompareTest, Lit
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import valid_evaluate
from repro.datalog import Database, run
from repro.datalog.parser import parse_program
from repro.datalog.semantics import Truth
from repro.relations import Universe, standard_registry

BOUND = 20


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


@pytest.fixture(scope="module")
def window():
    return Universe(range(BOUND + 1))


def algebra_evens():
    """The Example 3 definition: S^e = {0} ∪ MAP_{+2}(S^e)."""
    return AlgebraProgram.of(
        Definition(
            "Se", (), union(setconst(0), map_(call("Se"), Apply("add2", (Arg(),))))
        ),
        dialect=Dialect.ALGEBRA_EQ,
    )


def staged_evens():
    """Example 1's first style: the staging function F(i) spelled out, as
    a bounded deductive program (F(i) = evens below 2i)."""
    return parse_program(
        f"""
        f(0, N) :- N = 0.
        f(I, N) :- f(J, N), I = succ(J), I <= {BOUND}.
        f(I, N) :- f(J, M), I = succ(J), N = double(J), I <= {BOUND}.
        se(N) :- f(I, N).
        """
    )


class TestAlgebraDefinition:
    def test_membership_total_within_window(self, registry, window):
        result = valid_evaluate(algebra_evens(), {}, registry=registry, universe=window)
        assert result.is_well_defined()

    def test_true_exactly_on_evens(self, registry, window):
        result = valid_evaluate(algebra_evens(), {}, registry=registry, universe=window)
        for n in range(BOUND + 1):
            expected = Truth.TRUE if n % 2 == 0 else Truth.FALSE
            assert result.truth_of("Se", n) is expected, n

    def test_mem_false_not_undefined_on_odds(self, registry, window):
        """The point of the Section 2.2 completion: odd numbers are
        *certainly false*, not merely underivable."""
        result = valid_evaluate(algebra_evens(), {}, registry=registry, universe=window)
        assert result.truth_of("Se", 7) is Truth.FALSE
        assert 7 not in result.undefined_members("Se")


class TestStagedDefinition:
    def test_agrees_with_algebra_route(self, registry, window):
        algebra = valid_evaluate(algebra_evens(), {}, registry=registry, universe=window)
        staged = run(staged_evens(), Database(), semantics="valid", registry=registry)
        staged_evens_set = {
            row[0] for row in staged.true_rows("se") if row[0] <= BOUND
        }
        algebra_evens_set = {v for v in algebra.true["Se"] if isinstance(v, int)}
        assert staged_evens_set == algebra_evens_set

    def test_prefix_union_structure(self, registry):
        """F(1) ∪ ... ∪ F(i) = {0, 2, ..., 2i−2}, as derived in Example 1."""
        staged = run(staged_evens(), Database(), semantics="valid", registry=registry)
        for i in range(1, 6):
            prefix = {
                row[1]
                for row in staged.true_rows("f")
                if row[0] <= i
            }
            assert prefix == set(range(0, 2 * i - 1, 2))


class TestGuardedVariant:
    def test_selection_guard_replaces_universe(self, registry):
        """Bounding with σ instead of a universe gives the same window."""
        guarded = AlgebraProgram.of(
            Definition(
                "Se",
                (),
                union(
                    setconst(0),
                    select(
                        map_(call("Se"), Apply("add2", (Arg(),))),
                        CompareTest("<=", Arg(), Lit(BOUND)),
                    ),
                ),
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(guarded, {}, registry=registry)
        assert set(result.true["Se"]) == set(range(0, BOUND + 1, 2))
        assert result.is_well_defined()
