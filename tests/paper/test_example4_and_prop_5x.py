"""Example 4 and Propositions 5.1–5.3: algebra → deduction.

Example 4 is the crux of Section 5: the naive translation of
``Q = IFP_{{a}−x}`` is not stratified; under the *inflationary* semantics
it computes {a} (matching the algebra), under the *valid* semantics
``Q(a)`` is neither true nor false.  Proposition 5.2's stage-indexed
transformation repairs this, giving Proposition 5.3: every IFP-algebra
query has an equivalent d.i. deductive query (under valid semantics).
"""

import pytest

from repro.core.algebra_to_datalog import translate_expression, translation_registry
from repro.core.evaluator import evaluate
from repro.core.expressions import diff, ifp, map_, product, rel, select, setconst, union
from repro.core.funcs import Apply, Arg, Comp, CompareTest, Lit, MkTup
from repro.core.staging import run_staged
from repro.corpus import chain, cycle, edges_to_relation
from repro.core.encoding import environment_to_database
from repro.datalog import Database, run
from repro.datalog.semantics import Truth
from repro.datalog.stratification import is_stratified
from repro.relations import Atom, Relation

a = Atom("a")


@pytest.fixture(scope="module")
def registry():
    return translation_registry()


def example4_query():
    return ifp("x", diff(setconst(a), rel("x")))


class TestExample4:
    def test_algebra_value_is_a(self):
        assert evaluate(example4_query(), {}) == Relation.of(a)

    def test_translation_not_stratified(self):
        translation = translate_expression(example4_query())
        assert not is_stratified(translation.program)

    def test_inflationary_matches_algebra(self, registry):
        """First/second/third iteration narrative of Example 4."""
        translation = translate_expression(example4_query())
        result = run(
            translation.program, Database(), semantics="inflationary", registry=registry
        )
        assert result.true_rows(translation.result_predicate) == {(a,)}

    def test_valid_leaves_q_undefined(self, registry):
        """'Thus neither Q(a) nor ¬Q(a) hold in the valid model.'"""
        translation = translate_expression(example4_query())
        result = run(
            translation.program, Database(), semantics="valid", registry=registry
        )
        assert result.truth_of(translation.result_predicate, a) is Truth.UNDEFINED


class TestProposition52:
    def test_staged_valid_equals_inflationary(self, registry):
        translation = translate_expression(example4_query())
        inflationary = run(
            translation.program, Database(), semantics="inflationary", registry=registry
        )
        staged = run_staged(
            translation.program, Database(), semantics="valid", registry=registry
        )
        assert staged.converged
        assert staged.result.true_rows(
            translation.result_predicate
        ) == inflationary.true_rows(translation.result_predicate)


def tc_ifp_query():
    grow = map_(
        select(
            product(rel("MOVE"), rel("x")),
            CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
        ),
        MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
    )
    return ifp("x", union(rel("MOVE"), grow))


class TestProposition53:
    """IFP-algebra query → (translate, stage) → valid deduction: the
    composite equals direct algebra evaluation."""

    @pytest.mark.parametrize("edges_factory", [lambda: chain(5), lambda: cycle(4)])
    def test_positive_ifp_roundtrip(self, registry, edges_factory):
        edges = edges_factory()
        move = edges_to_relation(edges, "MOVE")
        direct = evaluate(tc_ifp_query(), {"MOVE": move})

        translation = translate_expression(tc_ifp_query())
        database = environment_to_database({"MOVE": move}, {})
        staged = run_staged(
            translation.program, database, semantics="valid", registry=registry
        )
        assert staged.converged
        rows = {
            row[0] for row in staged.result.true_rows(translation.result_predicate)
        }
        assert rows == set(direct.items)

    def test_nonpositive_ifp_roundtrip(self, registry):
        """exp(x) = ({a} ∪ B) − x, non-monotone; staging keeps the
        inflationary meaning under valid evaluation."""
        b_rel = Relation.of(Atom("b"), name="B")
        query = ifp("x", diff(union(setconst(a), rel("B")), rel("x")))
        direct = evaluate(query, {"B": b_rel})

        translation = translate_expression(query)
        database = environment_to_database({"B": b_rel}, {})
        staged = run_staged(
            translation.program, database, semantics="valid", registry=registry
        )
        assert staged.converged
        rows = {
            row[0] for row in staged.result.true_rows(translation.result_predicate)
        }
        assert rows == set(direct.items)
