"""Section 2.2: the valid interpretation of specifications with negation.

Two phenomena from the paper, replayed on bounded windows of SET(nat):

1. For *finite* sets, "MEM(x, S) defines a boolean-valued function that
   returns T if x is in S, and F otherwise" — the plain equations already
   totalise membership.

2. For a set constant defined by a *recursive* equation (Example 1's
   ``S^e``, here the miniature ``Sc = INS(0, Sc)``), "MEM returns T if x
   is in ``Sc``, but there is no derivation that produces false ...
   because EMPTY is never encountered when the content is scanned."  The
   Section 2.2 completion ``MEM(x,y) ≠ T → MEM(x,y) = F`` is exactly what
   restores totality, via the valid semantics' certainly-false facts.
"""

import pytest

from repro.datalog.semantics import Truth
from repro.specs import Operation, Specification, equation, valid_interpretation
from repro.specs.builtins import (
    FALSE,
    TRUE,
    ins,
    mem,
    mem_completion,
    nat_term,
    set_of_nat_spec,
    set_term,
)
from repro.specs.terms import sapp


def finite_universe(max_nat=2, set_elements=(0,)):
    """Numerals, EMPTY and singleton sets, and the boolean terms the MEM
    equation unfolds to (plus their one-step reducts)."""
    nats = [nat_term(i) for i in range(max_nat + 1)]
    sets = [sapp("EMPTY")] + [set_term(nat_term(i)) for i in set_elements]
    bools = [TRUE, FALSE]
    bools += [sapp("EQ", m, n) for m in nats for n in nats]
    bools += [mem(n, s) for n in nats for s in sets]
    bools += [
        sapp("ITEB", guard, TRUE, mem(d, s))
        for d in nats
        for s in sets
        for guard in [sapp("EQ", d, d2) for d2 in nats] + [TRUE, FALSE]
    ]
    return {"nat": nats, "set(nat)": sets, "bool": bools}


SC = sapp("Sc")


def recursive_spec(with_completion):
    """SET(nat) plus the recursive constant Sc = INS(0, Sc)."""
    base = set_of_nat_spec(with_completion=with_completion)
    extension = Specification.build(
        "Sc",
        sorts=["set(nat)", "nat"],
        operations=[
            Operation("Sc", (), "set(nat)"),
            Operation("0", (), "nat"),
            Operation("INS", ("nat", "set(nat)"), "set(nat)"),
        ],
        equations=[equation(SC, ins(nat_term(0), SC))],
    )
    return base.combine(extension, name="SET(nat)+Sc")


def recursive_universe(max_nat=1):
    nats = [nat_term(i) for i in range(max_nat + 1)]
    sets = [SC, ins(nat_term(0), SC)]
    bools = [TRUE, FALSE]
    bools += [sapp("EQ", m, n) for m in nats for n in nats]
    bools += [mem(n, s) for n in nats for s in sets]
    bools += [
        sapp("ITEB", guard, TRUE, mem(d, SC))
        for d in nats
        for guard in [sapp("EQ", d, d2) for d2 in nats] + [TRUE, FALSE]
    ]
    return {"nat": nats, "set(nat)": sets, "bool": bools}


class TestFiniteSetsTotalWithoutCompletion:
    @pytest.fixture(scope="class")
    def vi(self):
        return valid_interpretation(
            set_of_nat_spec(with_completion=False),
            universe=finite_universe(),
            max_atoms=3_000_000,
        )

    def test_positive_membership_derives(self, vi):
        assert vi.certainly_equal(mem(nat_term(0), set_term(nat_term(0))), TRUE)

    def test_negative_membership_derives_equationally(self, vi):
        """Finite scan reaches EMPTY: MEM(1, {0}) = FALSE by equations."""
        assert vi.certainly_equal(mem(nat_term(1), set_term(nat_term(0))), FALSE)
        assert vi.certainly_equal(mem(nat_term(2), sapp("EMPTY")), FALSE)

    def test_never_both(self, vi):
        for i in range(3):
            for collection in (sapp("EMPTY"), set_term(nat_term(0))):
                truths = {
                    vi.truth_equal(mem(nat_term(i), collection), TRUE),
                    vi.truth_equal(mem(nat_term(i), collection), FALSE),
                }
                assert truths == {Truth.TRUE, Truth.FALSE}, (i, collection)


class TestRecursiveConstantNeedsCompletion:
    @pytest.fixture(scope="class")
    def without(self):
        return valid_interpretation(
            recursive_spec(with_completion=False),
            universe=recursive_universe(),
            max_atoms=3_000_000,
        )

    @pytest.fixture(scope="class")
    def with_completion(self):
        return valid_interpretation(
            recursive_spec(with_completion=True),
            universe=recursive_universe(),
            max_atoms=3_000_000,
        )

    def test_positive_membership_always_derives(self, without):
        """MEM(0, Sc) = T needs no negation: unfold once and the guard is
        EQ(0,0) = TRUE."""
        assert without.certainly_equal(mem(nat_term(0), SC), TRUE)

    def test_no_false_derivation_without_completion(self, without):
        """'There is no derivation that produces false for an odd number
        (because EMPTY is never encountered...)' — MEM(1, Sc) = FALSE is
        not certainly true without the completion."""
        assert not without.certainly_equal(mem(nat_term(1), SC), FALSE)

    def test_true_is_certainly_excluded_even_without_completion(self, without):
        """The valid computation still rules out MEM(1, Sc) = TRUE: it has
        no possible derivation, so it lands in F."""
        assert without.certainly_unequal(mem(nat_term(1), SC), TRUE)

    def test_completion_restores_totality(self, with_completion):
        """With MEM(x,y) ≠ T → MEM(x,y) = F, the certainly-false fact
        MEM(1, Sc) = T licenses deriving MEM(1, Sc) = F — Example 1's
        mechanism."""
        assert with_completion.certainly_equal(mem(nat_term(1), SC), FALSE)
        assert with_completion.certainly_equal(mem(nat_term(0), SC), TRUE)
