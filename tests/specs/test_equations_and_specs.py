"""Unit tests for equations and specifications."""

import pytest

from repro.specs import (
    ConditionalEquation,
    EqPremise,
    NeqPremise,
    Operation,
    Specification,
    equation,
    sapp,
    svar,
)
from repro.specs.builtins import (
    bool_spec,
    example2_spec,
    mem_completion,
    nat_spec,
    nat_term,
    set_of_nat_spec,
    set_term,
)


class TestEquations:
    def test_plain_equation(self):
        eq = equation(sapp("a"), sapp("b"))
        assert not eq.premises
        assert not eq.uses_negation()

    def test_negation_detected(self):
        eq = equation(sapp("a"), sapp("b"), NeqPremise(sapp("a"), sapp("c")))
        assert eq.uses_negation()

    def test_variables_include_premises(self):
        x = svar("x", "s")
        eq = equation(sapp("a"), sapp("b"), EqPremise(x, sapp("a")))
        assert eq.variables() == {x}

    def test_instantiate(self):
        x = svar("x", "s")
        eq = equation(sapp("f", x), sapp("a"), NeqPremise(x, sapp("b")))
        ground = eq.instantiate({x: sapp("c")})
        assert ground.left == sapp("f", sapp("c"))
        assert ground.premises[0].left == sapp("c")
        assert ground.is_ground()

    def test_sort_check(self):
        sig_spec = Specification.build(
            "two-sorts",
            ["s", "t"],
            [Operation("a", (), "s"), Operation("b", (), "t")],
        )
        with pytest.raises(ValueError):
            Specification(
                "bad",
                sig_spec.signature,
                (equation(sapp("a"), sapp("b")),),
            )


class TestBuiltinSpecs:
    def test_bool(self):
        spec = bool_spec()
        assert "NOT" in spec.signature
        assert not spec.uses_negation()

    def test_nat_includes_eq(self):
        spec = nat_spec()
        assert "EQ" in spec.signature
        assert "ITEB" in spec.signature

    def test_set_of_nat_combines(self):
        spec = set_of_nat_spec()
        assert {"nat", "bool", "set(nat)"} <= spec.signature.sorts
        assert "INS" in spec.signature
        assert not spec.uses_negation()

    def test_completion_adds_negation(self):
        spec = set_of_nat_spec(with_completion=True)
        assert spec.uses_negation()

    def test_mem_completion_shape(self):
        eq = mem_completion()
        assert eq.uses_negation()
        assert eq.right == sapp("FALSE")

    def test_example2_constant_only(self):
        spec = example2_spec()
        assert spec.is_constant_only()
        assert spec.uses_negation()

    def test_set_term_shorthand(self):
        term = set_term(nat_term(1), nat_term(2))
        assert term.op == "INS"
        assert term.args[1].op == "INS"

    def test_nat_term(self):
        assert nat_term(0) == sapp("0")
        assert nat_term(2) == sapp("SUCC", sapp("SUCC", sapp("0")))

    def test_pretty_mentions_paper_pieces(self):
        text = set_of_nat_spec().pretty()
        assert "INS" in text and "MEM" in text and "EMPTY" in text

    def test_combine_operator(self):
        combined = bool_spec() + example2_spec()
        assert "NOT" in combined.signature and "a" in combined.signature
