"""Unit tests for congruence closure (the invariance relation)."""

import pytest

from repro.specs import CongruenceClosure, equation, sapp
from repro.specs.equations import EqPremise, NeqPremise
from repro.specs.terms import svar


class TestClosure:
    def test_reflexive(self):
        cc = CongruenceClosure([sapp("a")])
        assert cc.are_equal(sapp("a"), sapp("a"))

    def test_merge_symmetric_transitive(self):
        cc = CongruenceClosure()
        cc.merge(sapp("a"), sapp("b"))
        cc.merge(sapp("b"), sapp("c"))
        assert cc.are_equal(sapp("c"), sapp("a"))

    def test_congruence_propagates(self):
        cc = CongruenceClosure([sapp("f", sapp("a")), sapp("f", sapp("b"))])
        cc.merge(sapp("a"), sapp("b"))
        assert cc.are_equal(sapp("f", sapp("a")), sapp("f", sapp("b")))

    def test_congruence_nested(self):
        terms = [sapp("f", sapp("f", sapp("a"))), sapp("f", sapp("f", sapp("b")))]
        cc = CongruenceClosure(terms)
        cc.merge(sapp("a"), sapp("b"))
        assert cc.are_equal(*terms)

    def test_distinct_stay_distinct(self):
        cc = CongruenceClosure([sapp("a"), sapp("b")])
        assert not cc.are_equal(sapp("a"), sapp("b"))

    def test_classes(self):
        cc = CongruenceClosure([sapp("a"), sapp("b"), sapp("c")])
        cc.merge(sapp("a"), sapp("b"))
        sizes = sorted(len(group) for group in cc.classes())
        assert sizes == [1, 2]

    def test_ground_only(self):
        with pytest.raises(ValueError):
            CongruenceClosure([svar("x", "s")])


class TestConditionalSaturation:
    def test_horn_chain(self):
        eqs = [
            equation(sapp("a"), sapp("b")),
            equation(sapp("c"), sapp("d"), EqPremise(sapp("a"), sapp("b"))),
            equation(sapp("e"), sapp("f"), EqPremise(sapp("c"), sapp("d"))),
        ]
        cc = CongruenceClosure.from_ground_equations(eqs)
        assert cc.are_equal(sapp("e"), sapp("f"))

    def test_unsatisfied_premise_blocks(self):
        eqs = [equation(sapp("c"), sapp("d"), EqPremise(sapp("a"), sapp("b")))]
        cc = CongruenceClosure.from_ground_equations(eqs)
        assert not cc.are_equal(sapp("c"), sapp("d"))

    def test_congruence_feeds_conditions(self):
        eqs = [
            equation(sapp("a"), sapp("b")),
            equation(
                sapp("x"),
                sapp("y"),
                EqPremise(sapp("f", sapp("a")), sapp("f", sapp("b"))),
            ),
        ]
        cc = CongruenceClosure.from_ground_equations(eqs)
        assert cc.are_equal(sapp("x"), sapp("y"))

    def test_negation_rejected(self):
        eqs = [equation(sapp("a"), sapp("b"), NeqPremise(sapp("a"), sapp("c")))]
        with pytest.raises(ValueError):
            CongruenceClosure.from_ground_equations(eqs)

    def test_non_ground_rejected(self):
        x = svar("x", "s")
        with pytest.raises(ValueError):
            CongruenceClosure.from_ground_equations([equation(x, sapp("a"))])
