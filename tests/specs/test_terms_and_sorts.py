"""Unit tests for signatures, terms, and ground-term enumeration."""

import pytest

from repro.specs import (
    Operation,
    Signature,
    ground_terms,
    is_ground,
    match,
    sapp,
    substitute,
    subterms,
    svar,
    term_size,
    term_sort,
    term_variables,
)


def nat_signature():
    return Signature(
        ["nat", "bool"],
        [
            Operation("0", (), "nat"),
            Operation("SUCC", ("nat",), "nat"),
            Operation("TRUE", (), "bool"),
            Operation("EQ", ("nat", "nat"), "bool"),
        ],
    )


class TestSignature:
    def test_operations_sorted(self):
        names = [op.name for op in nat_signature().operations()]
        assert names == sorted(names)

    def test_unknown_sort_rejected(self):
        with pytest.raises(ValueError):
            Signature(["nat"], [Operation("f", ("mystery",), "nat")])

    def test_duplicate_operation_rejected(self):
        with pytest.raises(ValueError):
            Signature(["s"], [Operation("a", (), "s"), Operation("a", (), "s")])

    def test_constants_filter(self):
        sig = nat_signature()
        assert {op.name for op in sig.constants()} == {"0", "TRUE"}
        assert {op.name for op in sig.constants("nat")} == {"0"}

    def test_combine_merges(self):
        extra = Signature(["nat"], [Operation("PLUS", ("nat", "nat"), "nat")])
        combined = nat_signature().combine(extra)
        assert "PLUS" in combined
        assert "SUCC" in combined

    def test_combine_conflict_rejected(self):
        other = Signature(["nat"], [Operation("0", ("nat",), "nat")])
        with pytest.raises(ValueError):
            nat_signature().combine(other)


class TestTerms:
    def test_sort_inference(self):
        sig = nat_signature()
        assert term_sort(sapp("SUCC", sapp("0")), sig) == "nat"
        assert term_sort(sapp("EQ", sapp("0"), svar("x", "nat")), sig) == "bool"

    def test_ill_sorted_rejected(self):
        sig = nat_signature()
        with pytest.raises(ValueError):
            term_sort(sapp("SUCC", sapp("TRUE")), sig)

    def test_wrong_arity_rejected(self):
        sig = nat_signature()
        with pytest.raises(ValueError):
            term_sort(sapp("SUCC"), sig)

    def test_variables_and_ground(self):
        term = sapp("EQ", svar("x", "nat"), sapp("0"))
        assert term_variables(term) == {svar("x", "nat")}
        assert not is_ground(term)
        assert is_ground(sapp("0"))

    def test_substitute(self):
        x = svar("x", "nat")
        term = sapp("SUCC", x)
        assert substitute(term, {x: sapp("0")}) == sapp("SUCC", sapp("0"))

    def test_match_success(self):
        x = svar("x", "nat")
        binding = match(sapp("SUCC", x), sapp("SUCC", sapp("0")))
        assert binding == {x: sapp("0")}

    def test_match_repeated_var(self):
        x = svar("x", "nat")
        pattern = sapp("EQ", x, x)
        assert match(pattern, sapp("EQ", sapp("0"), sapp("0"))) is not None
        assert match(pattern, sapp("EQ", sapp("0"), sapp("SUCC", sapp("0")))) is None

    def test_match_failure(self):
        assert match(sapp("0"), sapp("TRUE")) is None

    def test_subterms_positions(self):
        term = sapp("EQ", sapp("0"), sapp("SUCC", sapp("0")))
        positions = dict(subterms(term))
        assert positions[()] == term
        assert positions[(1, 0)] == sapp("0")

    def test_term_size(self):
        assert term_size(sapp("SUCC", sapp("SUCC", sapp("0")))) == 3


class TestGroundTerms:
    def test_depth_zero_constants(self):
        universe = ground_terms(nat_signature(), 0)
        assert universe["nat"] == [sapp("0")]
        assert universe["bool"] == [sapp("TRUE")]

    def test_depth_grows(self):
        universe = ground_terms(nat_signature(), 2)
        assert sapp("SUCC", sapp("SUCC", sapp("0"))) in universe["nat"]
        assert sapp("EQ", sapp("0"), sapp("0")) in universe["bool"]

    def test_budget(self):
        with pytest.raises(RuntimeError):
            ground_terms(nat_signature(), 10, max_terms=20)
