"""Unit tests for the rewriting engine (Section 2's operational reading)."""

import pytest

from repro.specs import RewriteLimit, RewriteSystem, equation, sapp, svar
from repro.specs.builtins import (
    FALSE,
    TRUE,
    mem,
    nat_term,
    set_of_nat_spec,
    set_term,
)
from repro.specs.equations import EqPremise, NeqPremise


class TestBasicRewriting:
    def test_single_step(self):
        rs = RewriteSystem([equation(sapp("a"), sapp("b"))])
        assert rs.normalize(sapp("a")) == sapp("b")

    def test_inner_positions(self):
        rs = RewriteSystem([equation(sapp("a"), sapp("b"))])
        assert rs.normalize(sapp("f", sapp("a"))) == sapp("f", sapp("b"))

    def test_variables_instantiate(self):
        x = svar("x", "s")
        rs = RewriteSystem([equation(sapp("f", x), x)])
        assert rs.normalize(sapp("f", sapp("f", sapp("a")))) == sapp("a")

    def test_nontermination_detected(self):
        rs = RewriteSystem(
            [equation(sapp("a"), sapp("b")), equation(sapp("b"), sapp("a"))]
        )
        with pytest.raises(RewriteLimit):
            rs.normalize(sapp("a"), max_steps=100)

    def test_conditional_rule_fires_when_premise_joins(self):
        x = svar("x", "s")
        rs = RewriteSystem(
            [
                equation(sapp("c"), sapp("d")),
                equation(sapp("f", x), sapp("ok"), EqPremise(x, sapp("d"))),
            ]
        )
        assert rs.normalize(sapp("f", sapp("c"))) == sapp("ok")
        assert rs.normalize(sapp("f", sapp("e"))) == sapp("f", sapp("e"))

    def test_negative_equations_skipped(self):
        rs = RewriteSystem(
            [equation(sapp("a"), sapp("b"), NeqPremise(sapp("a"), sapp("c")))]
        )
        assert len(rs.rules) == 0
        assert len(rs.skipped_negative) == 1

    def test_joinable(self):
        rs = RewriteSystem(
            [equation(sapp("a"), sapp("c")), equation(sapp("b"), sapp("c"))]
        )
        assert rs.joinable(sapp("a"), sapp("b"))
        assert not rs.joinable(sapp("a"), sapp("d"))


class TestSetSpecEvaluation:
    """Section 2.1: MEM evaluates by rewriting on the SET(nat) spec."""

    @pytest.fixture(scope="class")
    def rs(self):
        return RewriteSystem(set_of_nat_spec().equations)

    def test_member_found(self, rs):
        collection = set_term(nat_term(1), nat_term(3))
        assert rs.normalize(mem(nat_term(3), collection)) == TRUE

    def test_member_absent(self, rs):
        collection = set_term(nat_term(1), nat_term(3))
        assert rs.normalize(mem(nat_term(2), collection)) == FALSE

    def test_empty_set(self, rs):
        assert rs.normalize(mem(nat_term(0), sapp("EMPTY"))) == FALSE

    def test_duplicate_insert_irrelevant(self, rs):
        collection = set_term(nat_term(1), nat_term(1), nat_term(2))
        assert rs.normalize(mem(nat_term(1), collection)) == TRUE

    def test_ins_idempotence_rule_applies(self, rs):
        doubled = set_term(nat_term(1), nat_term(1))
        # INS(d, INS(d, s)) = INS(d, s) normalises away the duplicate.
        assert rs.normalize(doubled) == set_term(nat_term(1))

    def test_ins_commutativity_can_loop(self, rs):
        """The INS-commutativity equation makes the rewrite system
        non-terminating on set terms — which is exactly why initial
        semantics is defined by the quotient, not by normal forms."""
        two_elements = set_term(nat_term(1), nat_term(2))
        with pytest.raises(RewriteLimit):
            rs.normalize(two_elements, max_steps=200)
