"""Unit tests for the list and stack specifications (Section 2.1)."""

import pytest

from repro.specs import RewriteSystem
from repro.specs.builtins import FALSE, TRUE, nat_spec, nat_term
from repro.specs.more_types import (
    EMPTYSTACK,
    NIL,
    list_spec,
    list_term,
    push_all,
    stack_spec,
)
from repro.specs.terms import sapp


@pytest.fixture(scope="module")
def list_rewriter():
    return RewriteSystem((nat_spec().combine(list_spec("nat"))).equations)


@pytest.fixture(scope="module")
def stack_rewriter():
    return RewriteSystem(stack_spec("nat").equations)


class TestLists:
    def test_head_tail(self, list_rewriter):
        lst = list_term(nat_term(1), nat_term(2))
        assert list_rewriter.normalize(sapp("HEAD", lst)) == nat_term(1)
        assert list_rewriter.normalize(sapp("TAIL", lst)) == list_term(nat_term(2))

    def test_append(self, list_rewriter):
        left = list_term(nat_term(1))
        right = list_term(nat_term(2), nat_term(3))
        appended = list_rewriter.normalize(sapp("APPEND", left, right))
        assert appended == list_term(nat_term(1), nat_term(2), nat_term(3))

    def test_append_nil_identity(self, list_rewriter):
        lst = list_term(nat_term(1))
        assert list_rewriter.normalize(sapp("APPEND", NIL, lst)) == lst
        assert list_rewriter.normalize(sapp("APPEND", lst, NIL)) == lst

    def test_occurs(self, list_rewriter):
        lst = list_term(nat_term(1), nat_term(3))
        assert list_rewriter.normalize(sapp("OCCURS", nat_term(3), lst)) == TRUE
        assert list_rewriter.normalize(sapp("OCCURS", nat_term(2), lst)) == FALSE

    def test_lists_keep_duplicates_and_order(self, list_rewriter):
        """Unlike SET, no idempotence/commutativity: [1,1,2] ≠ [1,2] and
        [1,2] ≠ [2,1] in the initial algebra (distinct normal forms)."""
        assert list_rewriter.normalize(
            list_term(nat_term(1), nat_term(1))
        ) != list_rewriter.normalize(list_term(nat_term(1)))
        assert list_rewriter.normalize(
            list_term(nat_term(1), nat_term(2))
        ) != list_rewriter.normalize(list_term(nat_term(2), nat_term(1)))

    def test_head_of_nil_is_stuck(self, list_rewriter):
        """Underspecified observer: HEAD(NIL) is its own normal form."""
        assert list_rewriter.normalize(sapp("HEAD", NIL)) == sapp("HEAD", NIL)


class TestStacks:
    def test_lifo(self, stack_rewriter):
        stack = push_all(nat_term(1), nat_term(2))
        assert stack_rewriter.normalize(sapp("TOP", stack)) == nat_term(1)
        assert stack_rewriter.normalize(
            sapp("TOP", sapp("POP", stack))
        ) == nat_term(2)

    def test_pop_push_cancel(self, stack_rewriter):
        stack = push_all(nat_term(3))
        assert stack_rewriter.normalize(
            sapp("POP", sapp("PUSH", nat_term(9), stack))
        ) == stack

    def test_isempty(self, stack_rewriter):
        assert stack_rewriter.normalize(sapp("ISEMPTY", EMPTYSTACK)) == TRUE
        assert stack_rewriter.normalize(
            sapp("ISEMPTY", push_all(nat_term(1)))
        ) == FALSE

    def test_quotient_algebra_of_stacks(self):
        """POP(PUSH(d, s)) = s makes deep terms collapse to shallow ones
        in the quotient."""
        from repro.specs.quotient import quotient_term_algebra
        from repro.specs import Operation, Specification, equation, svar

        # A 1-element data sort keeps the window small.
        spec = Specification.build(
            "ministack",
            ["d", "stack"],
            [
                Operation("x", (), "d"),
                Operation("EMPTYSTACK", (), "stack"),
                Operation("PUSH", ("d", "stack"), "stack"),
                Operation("POP", ("stack",), "stack"),
            ],
            [
                equation(
                    sapp("POP", sapp("PUSH", svar("e", "d"), svar("s", "stack"))),
                    svar("s", "stack"),
                )
            ],
        )
        algebra = quotient_term_algebra(spec, depth=3)
        collapsed = sapp("POP", sapp("PUSH", sapp("x"), EMPTYSTACK))
        assert algebra.evaluate(collapsed) == algebra.evaluate(EMPTYSTACK)
