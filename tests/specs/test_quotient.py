"""Unit tests for the quotient term algebra (Section 2.1)."""

import pytest

from repro.specs import Operation, Specification, equation, sapp, svar
from repro.specs.builtins import mem_completion
from repro.specs.quotient import quotient_term_algebra


def mod_spec(modulus: int) -> Specification:
    """Naturals modulo ``modulus``: s^modulus(0) = 0."""
    term = sapp("0")
    for _ in range(modulus):
        term = sapp("s", term)
    return Specification.build(
        f"mod{modulus}",
        ["n"],
        [Operation("0", (), "n"), Operation("s", ("n",), "n")],
        [equation(term, sapp("0"))],
    )


class TestModularArithmetic:
    def test_carrier_size(self):
        algebra = quotient_term_algebra(mod_spec(3), depth=6)
        assert algebra.size("n") == 3

    def test_evaluation_wraps(self):
        algebra = quotient_term_algebra(mod_spec(2), depth=6)
        four = sapp("s", sapp("s", sapp("s", sapp("s", sapp("0")))))
        assert algebra.evaluate(four) == algebra.evaluate(sapp("0"))

    def test_operations_act_on_classes(self):
        algebra = quotient_term_algebra(mod_spec(2), depth=4)
        zero = algebra.evaluate(sapp("0"))
        one = algebra.apply("s", zero)
        assert one != zero
        assert algebra.apply("s", one) == zero

    def test_equal(self):
        algebra = quotient_term_algebra(mod_spec(3), depth=6)
        three = sapp("s", sapp("s", sapp("s", sapp("0"))))
        assert algebra.equal(three, sapp("0"))
        assert not algebra.equal(sapp("s", sapp("0")), sapp("0"))


class TestConstruction:
    def test_free_algebra_when_no_equations(self):
        spec = Specification.build(
            "free", ["n"], [Operation("0", (), "n"), Operation("s", ("n",), "n")]
        )
        algebra = quotient_term_algebra(spec, depth=3)
        # No identifications: one class per term.
        assert algebra.size("n") == 4

    def test_variable_equations_instantiated(self):
        x = svar("x", "n")
        spec = Specification.build(
            "collapse",
            ["n"],
            [Operation("0", (), "n"), Operation("s", ("n",), "n")],
            [equation(sapp("s", x), x)],  # s is the identity
        )
        algebra = quotient_term_algebra(spec, depth=4)
        assert algebra.size("n") == 1

    def test_negation_rejected(self):
        spec = Specification.build(
            "neg",
            ["n", "bool", "set(n)"],
            [
                Operation("0", (), "n"),
                Operation("TRUE", (), "bool"),
                Operation("FALSE", (), "bool"),
                Operation("MEM", ("n", "set(n)"), "bool"),
                Operation("EMPTY", (), "set(n)"),
            ],
            [mem_completion("n")],
        )
        with pytest.raises(ValueError, match="negation-free"):
            quotient_term_algebra(spec, depth=1)

    def test_ill_typed_apply_rejected(self):
        algebra = quotient_term_algebra(mod_spec(2), depth=3)
        zero = algebra.evaluate(sapp("0"))
        with pytest.raises(ValueError):
            algebra.apply("s", zero, zero)

    def test_congruence_well_defined(self):
        """Applying an operation to any member of a class lands in the
        same class — the quotient really is an algebra."""
        algebra = quotient_term_algebra(mod_spec(2), depth=5)
        two = sapp("s", sapp("s", sapp("0")))
        via_zero = algebra.apply("s", algebra.evaluate(sapp("0")))
        via_two = algebra.apply("s", algebra.evaluate(two))
        assert via_zero == via_two
