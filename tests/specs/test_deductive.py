"""Unit tests: the deductive version of a specification (Section 2.2)."""

import pytest

from repro.datalog.semantics import Truth
from repro.specs import (
    Operation,
    Specification,
    decode_value,
    encode_term,
    equation,
    sapp,
    svar,
    valid_interpretation,
)
from repro.specs.builtins import example2_spec
from repro.specs.equations import EqPremise, NeqPremise


class TestEncoding:
    def test_constant(self):
        from repro.relations import Atom

        assert encode_term(sapp("a")) == Atom("a")

    def test_application(self):
        value = encode_term(sapp("f", sapp("a"), sapp("b")))
        assert decode_value(value) == sapp("f", sapp("a"), sapp("b"))

    def test_nested_round_trip(self):
        term = sapp("f", sapp("g", sapp("a")), sapp("b"))
        assert decode_value(encode_term(term)) == term

    def test_ground_only(self):
        with pytest.raises(ValueError):
            encode_term(svar("x", "s"))


def tiny_spec(*equations_):
    return Specification.build(
        "tiny",
        ["s"],
        [Operation(name, (), "s") for name in ("a", "b", "c", "d")],
        list(equations_),
    )


class TestValidInterpretation:
    def test_equality_axioms(self):
        vi = valid_interpretation(tiny_spec(equation(sapp("a"), sapp("b"))))
        assert vi.certainly_equal(sapp("a"), sapp("a"))  # reflexivity
        assert vi.certainly_equal(sapp("b"), sapp("a"))  # symmetry

    def test_transitivity(self):
        vi = valid_interpretation(
            tiny_spec(
                equation(sapp("a"), sapp("b")), equation(sapp("b"), sapp("c"))
            )
        )
        assert vi.certainly_equal(sapp("a"), sapp("c"))

    def test_underivable_is_certainly_false(self):
        vi = valid_interpretation(tiny_spec())
        assert vi.certainly_unequal(sapp("a"), sapp("b"))
        assert vi.is_total()

    def test_conditional_equation(self):
        vi = valid_interpretation(
            tiny_spec(
                equation(sapp("a"), sapp("b")),
                equation(sapp("c"), sapp("d"), EqPremise(sapp("a"), sapp("b"))),
            )
        )
        assert vi.certainly_equal(sapp("c"), sapp("d"))

    def test_negative_premise_uses_valid_negation(self):
        # a ≠ b holds validly (no derivation of a = b), so c = d fires.
        vi = valid_interpretation(
            tiny_spec(
                equation(sapp("c"), sapp("d"), NeqPremise(sapp("a"), sapp("b")))
            )
        )
        assert vi.certainly_equal(sapp("c"), sapp("d"))

    def test_example2_undefined(self):
        """Example 2: no equality can be derived in a valid manner, and the
        cross-constant equalities end up undefined."""
        vi = valid_interpretation(example2_spec(), depth=0)
        assert vi.truth_equal(sapp("a"), sapp("b")) is Truth.UNDEFINED
        assert vi.truth_equal(sapp("a"), sapp("c")) is Truth.UNDEFINED
        assert vi.certainly_equal(sapp("a"), sapp("a"))
        assert not vi.is_total()

    def test_congruence_via_functions(self):
        spec = Specification.build(
            "cong",
            ["s"],
            [
                Operation("a", (), "s"),
                Operation("b", (), "s"),
                Operation("f", ("s",), "s"),
            ],
            [equation(sapp("a"), sapp("b"))],
        )
        vi = valid_interpretation(spec, depth=1)
        assert vi.certainly_equal(sapp("f", sapp("a")), sapp("f", sapp("b")))

    def test_variable_equations_instantiate_over_window(self):
        x = svar("x", "s")
        spec = Specification.build(
            "allsame",
            ["s"],
            [Operation("a", (), "s"), Operation("b", (), "s")],
            [equation(x, sapp("a"))],
        )
        vi = valid_interpretation(spec, depth=0)
        assert vi.certainly_equal(sapp("b"), sapp("a"))
