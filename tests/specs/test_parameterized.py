"""Unit tests for parameterized specifications (Section 2.1)."""

import pytest

from repro.specs import (
    Operation,
    RewriteSystem,
    Specification,
    equation,
    instantiate,
    rename_sort,
    sapp,
    svar,
)
from repro.specs.builtins import FALSE, TRUE, bool_spec, mem, set_spec, set_term


def color_spec():
    """A tiny actual-parameter type with definable equality."""
    eq_pairs = [("red", "red", TRUE), ("green", "green", TRUE),
                ("red", "green", FALSE), ("green", "red", FALSE)]
    return Specification.build(
        "color",
        ["color", "bool"],
        [Operation(c, (), "color") for c in ("red", "green")]
        + [
            Operation("EQ", ("color", "color"), "bool"),
            Operation("TRUE", (), "bool"),
            Operation("FALSE", (), "bool"),
        ],
        [equation(sapp("EQ", sapp(l), sapp(r)), v) for l, r, v in eq_pairs],
    )


class TestRenameSort:
    def test_sorts_renamed(self):
        spec = rename_sort(set_spec("data"), {"data": "nat"})
        assert "nat" in spec.signature.sorts
        assert "data" not in spec.signature.sorts

    def test_compound_sort_names_follow(self):
        spec = rename_sort(set_spec("data"), {"data": "nat"})
        assert "set(nat)" in spec.signature.sorts
        assert "set(data)" not in spec.signature.sorts

    def test_operation_arities_follow(self):
        spec = rename_sort(set_spec("data"), {"data": "nat"})
        ins = spec.signature.operation("INS")
        assert ins.arg_sorts == ("nat", "set(nat)")

    def test_equation_variables_follow(self):
        spec = rename_sort(set_spec("data"), {"data": "nat"})
        variables = {v.sort for eq in spec.equations for v in eq.variables()}
        assert "data" not in variables
        assert "nat" in variables

    def test_identity_elsewhere(self):
        spec = rename_sort(set_spec("data"), {"data": "nat"})
        assert "bool" in spec.signature.sorts


class TestInstantiate:
    def test_set_of_colors(self):
        generic = bool_spec().combine(set_spec("data"), name="SET(data)")
        inst = instantiate(generic, "data", color_spec(), "color", name="SET(color)")
        assert "set(color)" in inst.signature.sorts
        assert inst.name == "SET(color)"

    def test_instantiated_membership_evaluates(self):
        """Footnote 1 in action: colors define EQ, so MEM works on
        SET(color) by rewriting — the requirement is satisfied."""
        generic = bool_spec().combine(set_spec("data"), name="SET(data)")
        inst = instantiate(generic, "data", color_spec(), "color")
        rewriter = RewriteSystem(inst.equations)
        red, green = sapp("red"), sapp("green")
        assert rewriter.normalize(mem(red, set_term(red))) == TRUE
        assert rewriter.normalize(mem(green, set_term(red))) == FALSE

    def test_unknown_parameter_sort_rejected(self):
        with pytest.raises(ValueError):
            instantiate(set_spec("data"), "mystery", color_spec(), "color")

    def test_conflicting_actual_rejected(self):
        """The actual type redeclares an imported operation differently —
        Signature.combine must refuse."""
        bad_actual = Specification.build(
            "bad",
            ["color", "bool"],
            [
                Operation("red", (), "color"),
                Operation("EQ", ("color",), "bool"),  # wrong arity
                Operation("TRUE", (), "bool"),
                Operation("FALSE", (), "bool"),
                Operation("ITEB", ("bool", "bool", "bool"), "bool"),
            ],
        )
        generic = bool_spec().combine(set_spec("data"), name="SET(data)")
        with pytest.raises(ValueError):
            instantiate(generic, "data", bad_actual, "color")
