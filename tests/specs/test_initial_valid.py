"""Unit tests: valid algebras and the Prop 2.3(2) decision procedure."""

import pytest

from repro.specs import (
    Operation,
    Specification,
    analyze_constant_spec,
    equation,
    is_model,
    partitions_of,
    refines,
    sapp,
    svar,
)
from repro.specs.builtins import example2_spec
from repro.specs.equations import EqPremise, NeqPremise


class TestPartitions:
    def test_bell_numbers(self):
        assert len(list(partitions_of(("a",)))) == 1
        assert len(list(partitions_of(("a", "b")))) == 2
        assert len(list(partitions_of(("a", "b", "c")))) == 5
        assert len(list(partitions_of(("a", "b", "c", "d")))) == 15

    def test_refines(self):
        fine = frozenset({frozenset({"a"}), frozenset({"b"})})
        coarse = frozenset({frozenset({"a", "b"})})
        assert refines(fine, coarse)
        assert not refines(coarse, fine)
        assert refines(fine, fine)


def spec_of(*equations_, constants="abc"):
    return Specification.build(
        "test",
        ["s"],
        [Operation(name, (), "s") for name in constants],
        list(equations_),
    )


class TestIsModel:
    def test_plain_equation_forces_merge(self):
        spec = spec_of(equation(sapp("a"), sapp("b")))
        merged = frozenset({frozenset({"a", "b"}), frozenset({"c"})})
        split = frozenset({frozenset({"a"}), frozenset({"b"}), frozenset({"c"})})
        assert is_model(spec, merged)
        assert not is_model(spec, split)

    def test_conditional_checked_per_instance(self):
        spec = spec_of(
            equation(sapp("b"), sapp("c"), EqPremise(sapp("a"), sapp("b")))
        )
        # a=b but b≠c violates; a≠b makes it vacuous.
        bad = frozenset({frozenset({"a", "b"}), frozenset({"c"})})
        vacuous = frozenset({frozenset({"a"}), frozenset({"b"}), frozenset({"c"})})
        assert not is_model(spec, bad)
        assert is_model(spec, vacuous)

    def test_variables_instantiated(self):
        x = svar("x", "s")
        spec = spec_of(equation(x, sapp("a")))
        all_merged = frozenset({frozenset({"a", "b", "c"})})
        assert is_model(spec, all_merged)
        assert not is_model(
            spec, frozenset({frozenset({"a", "b"}), frozenset({"c"})})
        )


class TestExample2:
    def test_exactly_the_papers_models(self):
        analysis = analyze_constant_spec(example2_spec())
        as_sets = {
            frozenset(frozenset(block) for block in partition)
            for partition in analysis.valid_partitions
        }
        expected = {
            frozenset({frozenset({"a", "b", "c"})}),
            frozenset({frozenset({"a", "b"}), frozenset({"c"})}),
            frozenset({frozenset({"a", "c"}), frozenset({"b"})}),
        }
        assert as_sets == expected

    def test_no_initial_valid_model(self):
        analysis = analyze_constant_spec(example2_spec())
        assert not analysis.has_initial_valid_model()

    def test_no_certain_equalities(self):
        analysis = analyze_constant_spec(example2_spec())
        assert analysis.certainly_equal == frozenset()


class TestDecisionProcedure:
    def test_positive_spec_has_initial(self):
        analysis = analyze_constant_spec(spec_of(equation(sapp("a"), sapp("b"))))
        assert analysis.has_initial_valid_model()
        assert frozenset({"a", "b"}) in analysis.initial

    def test_empty_spec_initial_is_discrete(self):
        analysis = analyze_constant_spec(spec_of())
        assert analysis.initial == frozenset(
            {frozenset({"a"}), frozenset({"b"}), frozenset({"c"})}
        )

    def test_negation_with_unique_outcome(self):
        # a ≠ b holds validly, so a = c is certainly true; the initial
        # valid model merges exactly {a, c}.
        spec = spec_of(equation(sapp("a"), sapp("c"), NeqPremise(sapp("a"), sapp("b"))))
        analysis = analyze_constant_spec(spec)
        assert analysis.has_initial_valid_model()
        assert frozenset({"a", "c"}) in analysis.initial
        assert ("a", "c") in analysis.certainly_equal

    def test_valid_filter_excludes_models(self):
        spec = spec_of(equation(sapp("a"), sapp("c"), NeqPremise(sapp("a"), sapp("b"))))
        analysis = analyze_constant_spec(spec)
        assert len(analysis.valid_partitions) < len(analysis.model_partitions)

    def test_multi_sort_partitions_respect_sorts(self):
        spec = Specification.build(
            "two-sorted",
            ["s", "t"],
            [
                Operation("a", (), "s"),
                Operation("b", (), "s"),
                Operation("u", (), "t"),
            ],
        )
        analysis = analyze_constant_spec(spec)
        for partition in analysis.model_partitions:
            for block in partition:
                assert not ({"a", "b"} & block and {"u"} & block)

    def test_guards(self):
        non_constant = Specification.build(
            "fn", ["s"], [Operation("a", (), "s"), Operation("f", ("s",), "s")]
        )
        with pytest.raises(ValueError, match="constant-only"):
            analyze_constant_spec(non_constant)
        big = spec_of(constants="abcdefghijkl")
        with pytest.raises(ValueError, match="exceed"):
            analyze_constant_spec(big)
