"""Unit tests for Relation and its algebra operators."""

import pytest

from repro.relations import Atom, Relation, tup

a, b, c = Atom("a"), Atom("b"), Atom("c")


class TestConstruction:
    def test_of_and_len(self):
        assert len(Relation.of(a, b)) == 2

    def test_empty(self):
        assert not Relation.empty()
        assert len(Relation.empty()) == 0

    def test_duplicates_collapse(self):
        assert Relation.of(a, a) == Relation.of(a)

    def test_from_pairs(self):
        move = Relation.from_pairs([(a, b), (b, c)], name="MOVE")
        assert tup(a, b) in move
        assert move.name == "MOVE"

    def test_rejects_non_values(self):
        with pytest.raises(TypeError):
            Relation([object()])

    def test_renamed(self):
        assert Relation.of(a).renamed("R").name == "R"


class TestOperators:
    def test_union(self):
        assert Relation.of(a) | Relation.of(b) == Relation.of(a, b)

    def test_difference(self):
        assert Relation.of(a, b) - Relation.of(b) == Relation.of(a)

    def test_intersection_derived(self):
        left, right = Relation.of(a, b), Relation.of(b, c)
        # Example 3: x ∩ y = x − (x − y)
        assert left & right == left - (left - right)

    def test_exclusive_or_derived(self):
        left, right = Relation.of(a, b), Relation.of(b, c)
        # Example 3: x ⊗ y = (x − y) ∪ (y − x)
        assert left ^ right == (left - right) | (right - left)

    def test_product_makes_pairs(self):
        product = Relation.of(a) * Relation.of(b, c)
        assert product == Relation.of(tup(a, b), tup(a, c))

    def test_product_sizes_multiply(self):
        assert len(Relation.of(a, b) * Relation.of(b, c)) == 4

    def test_select(self):
        numbers = Relation.of(1, 2, 3, 4)
        assert numbers.select(lambda v: v > 2) == Relation.of(3, 4)

    def test_map(self):
        numbers = Relation.of(1, 2, 3)
        assert numbers.map(lambda v: v * 2) == Relation.of(2, 4, 6)

    def test_map_may_collapse(self):
        assert Relation.of(1, -1).map(abs) == Relation.of(1)

    def test_project(self):
        move = Relation.of(tup(a, b), tup(b, c))
        assert move.project(1) == Relation.of(a, b)
        assert move.project(2) == Relation.of(b, c)

    def test_project_skips_non_tuples(self):
        mixed = Relation.of(tup(a, b), c)
        assert mixed.project(1) == Relation.of(a)

    def test_insert(self):
        assert Relation.empty().insert(a) == Relation.of(a)


class TestProtocol:
    def test_iteration_deterministic(self):
        assert list(Relation.of(c, a, b)) == [a, b, c]

    def test_contains(self):
        assert a in Relation.of(a)
        assert b not in Relation.of(a)

    def test_equality_with_raw_sets(self):
        assert Relation.of(a, b) == {a, b}

    def test_hashable(self):
        assert len({Relation.of(a), Relation.of(a)}) == 1

    def test_name_not_part_of_equality(self):
        assert Relation.of(a, name="R") == Relation.of(a, name="S")

    def test_as_fset_nests(self):
        nested = Relation.of(Relation.of(a).as_fset())
        assert len(nested) == 1

    def test_operations_need_relation_like(self):
        with pytest.raises(TypeError):
            Relation.of(a).union(42)
