"""Unit tests for bounded universes and the function registry."""

import pytest

from repro.relations import (
    Atom,
    DomainFunction,
    FunctionRegistry,
    Universe,
    standard_registry,
)


class TestDomainFunction:
    def test_apply(self):
        double = DomainFunction("double", 1, lambda n: n * 2)
        assert double.apply((4,)) == 8

    def test_partiality_via_none(self):
        pred = standard_registry().get("pred")
        assert pred.apply((0,)) is None
        assert pred.apply((3,)) == 2

    def test_partiality_via_exception(self):
        bad = DomainFunction("bad", 1, lambda n: n / 0)
        assert bad.apply((1,)) is None

    def test_wrong_arity_rejected(self):
        double = DomainFunction("double", 1, lambda n: n * 2)
        with pytest.raises(ValueError):
            double.apply((1, 2))

    def test_non_value_results_rejected(self):
        broken = DomainFunction("broken", 0, lambda: object())
        with pytest.raises(TypeError):
            broken.apply(())

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            DomainFunction("f", -1, lambda: None)


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        registry.register("inc", 1, lambda n: n + 1)
        assert registry.get("inc").apply((1,)) == 2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            FunctionRegistry().get("nope")

    def test_standard_contents(self):
        registry = standard_registry()
        for name in ("succ", "pred", "add2", "double", "add", "mul"):
            assert name in registry

    def test_int_only_guard(self):
        registry = standard_registry()
        assert registry.get("succ").apply((Atom("a"),)) is None
        assert registry.get("succ").apply((True,)) is None

    def test_copy_is_independent(self):
        original = standard_registry()
        clone = original.copy()
        clone.register("only_clone", 0, lambda: 1)
        assert "only_clone" not in original


class TestUniverse:
    def test_explicit(self):
        universe = Universe([1, 2, 3])
        assert 2 in universe
        assert 9 not in universe
        assert len(universe) == 3

    def test_closure_depth(self):
        registry = standard_registry()
        universe = Universe.closure([0], registry, ["succ"], depth=3)
        assert set(universe.items) == {0, 1, 2, 3}

    def test_closure_depth_zero_is_seed(self):
        universe = Universe.closure([5], standard_registry(), ["succ"], depth=0)
        assert set(universe.items) == {5}

    def test_closure_stops_at_fixpoint(self):
        # pred is partial at 0, so closure of {2} under pred is {0, 1, 2}.
        registry = standard_registry()
        universe = Universe.closure([2], registry, ["pred"], depth=50)
        assert set(universe.items) == {0, 1, 2}

    def test_closure_size_guard(self):
        registry = standard_registry()
        with pytest.raises(RuntimeError):
            Universe.closure([0], registry, ["succ"], depth=100, max_size=10)

    def test_union(self):
        assert len(Universe([1]).union(Universe([2]))) == 2

    def test_iteration_deterministic(self):
        assert list(Universe([3, 1, 2])) == [1, 2, 3]

    def test_rejects_non_values(self):
        with pytest.raises(TypeError):
            Universe([object()])
