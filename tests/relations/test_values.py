"""Unit tests for the complex-object value universe."""

import pytest

from repro.relations.values import (
    Atom,
    FSet,
    Tup,
    format_value,
    fset,
    is_value,
    sort_of,
    sorted_values,
    tup,
    value_key,
)


class TestAtom:
    def test_equality_by_name(self):
        assert Atom("a") == Atom("a")
        assert Atom("a") != Atom("b")

    def test_hashable(self):
        assert len({Atom("a"), Atom("a"), Atom("b")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Atom(3)

    def test_repr_is_bare_name(self):
        assert repr(Atom("pos7")) == "pos7"


class TestTup:
    def test_components_are_one_indexed(self):
        pair = tup(Atom("a"), Atom("b"))
        assert pair.component(1) == Atom("a")
        assert pair.component(2) == Atom("b")

    def test_component_out_of_range(self):
        pair = tup(Atom("a"), Atom("b"))
        with pytest.raises(IndexError):
            pair.component(3)
        with pytest.raises(IndexError):
            pair.component(0)

    def test_nested_tuples(self):
        nested = tup(tup(1, 2), 3)
        assert nested.component(1).component(2) == 2

    def test_equality_structural(self):
        assert tup(1, 2) == tup(1, 2)
        assert tup(1, 2) != tup(2, 1)

    def test_iteration_and_len(self):
        assert list(tup(1, 2, 3)) == [1, 2, 3]
        assert len(tup(1, 2, 3)) == 3

    def test_rejects_non_values(self):
        with pytest.raises(TypeError):
            Tup((object(),))

    def test_repr(self):
        assert repr(tup(Atom("a"), 1)) == "[a, 1]"


class TestFSet:
    def test_set_semantics(self):
        assert fset(1, 2, 2) == fset(2, 1)
        assert len(fset(1, 2, 2)) == 2

    def test_membership(self):
        assert 1 in fset(1, 2)
        assert 3 not in fset(1, 2)

    def test_nested_sets(self):
        inner = fset(1)
        outer = fset(inner, 2)
        assert inner in outer

    def test_iteration_deterministic(self):
        assert list(fset(3, 1, 2)) == [1, 2, 3]

    def test_rejects_non_values(self):
        with pytest.raises(TypeError):
            FSet(frozenset({object()}))


class TestSortOf:
    def test_scalar_sorts(self):
        assert sort_of(True) == "bool"
        assert sort_of(3) == "int"
        assert sort_of("x") == "str"
        assert sort_of(Atom("a")) == "atom"

    def test_tuple_sort(self):
        assert sort_of(tup(1, Atom("a"))) == ("tup", ("int", "atom"))

    def test_set_sorts(self):
        assert sort_of(fset(1, 2)) == ("set", "int")
        assert sort_of(fset()) == ("set", None)
        assert sort_of(fset(1, Atom("a"))) == ("set", "mixed")


class TestOrdering:
    def test_total_order_across_types(self):
        values = [fset(1), tup(1, 2), Atom("z"), "s", 5, True]
        ordered = sorted_values(values)
        assert ordered == [True, 5, "s", Atom("z"), tup(1, 2), fset(1)]

    def test_value_key_rejects_non_values(self):
        with pytest.raises(TypeError):
            value_key(object())

    def test_is_value(self):
        assert is_value(tup(1, fset(Atom("a"))))
        assert not is_value(object())
        assert not is_value([1, 2])


class TestFormat:
    def test_strings_quoted(self):
        assert format_value("abc") == "'abc'"

    def test_numbers_plain(self):
        assert format_value(7) == "7"

    def test_structures(self):
        assert format_value(tup(Atom("a"), "s")) == "[a, 's']"
