"""Unit tests for the derived join operator."""

from repro.relations import Atom, Relation, tup
from repro.relations.operations import join

a, b, c, d = (Atom(x) for x in "abcd")


def test_tc_step_join():
    move = Relation.of(tup(a, b), tup(b, c), tup(c, d))
    stepped = join(move, move)
    assert stepped == Relation.of(tup(a, b, c), tup(b, c, d))


def test_custom_positions():
    left = Relation.of(tup(a, 1), tup(b, 2))
    right = Relation.of(tup(1, c), tup(2, d))
    assert join(left, right, on=(2, 1)) == Relation.of(tup(a, 1, c), tup(b, 2, d))


def test_join_on_first_components():
    left = Relation.of(tup(a, 1))
    right = Relation.of(tup(a, 2), tup(b, 3))
    assert join(left, right, on=(1, 1)) == Relation.of(tup(a, 1, 2))


def test_no_matches():
    left = Relation.of(tup(a, b))
    right = Relation.of(tup(c, d))
    assert join(left, right) == Relation.empty()


def test_non_tuples_skipped():
    left = Relation.of(a, tup(a, b))
    right = Relation.of(tup(b, c), c)
    assert join(left, right) == Relation.of(tup(a, b, c))


def test_equivalent_to_primitive_combination():
    """join really is π(σ(× ...)) — spot-check against the primitives."""
    move = Relation.of(tup(a, b), tup(b, c), tup(c, d), tup(b, d))
    joined = join(move, move)
    by_primitives = (
        (move * move)
        .select(lambda p: p.component(1).component(2) == p.component(2).component(1))
        .map(
            lambda p: tup(
                p.component(1).component(1),
                p.component(1).component(2),
                p.component(2).component(2),
            )
        )
    )
    assert joined == by_primitives
