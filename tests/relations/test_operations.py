"""Unit tests for the free-function operator forms."""

from repro.relations import Atom, Relation, tup
from repro.relations.operations import (
    big_union,
    difference,
    exclusive_or,
    intersection,
    map_,
    product,
    project,
    select,
    union,
)

a, b, c = Atom("a"), Atom("b"), Atom("c")


def test_union_accepts_iterables():
    assert union([a], [b]) == Relation.of(a, b)


def test_difference():
    assert difference([a, b], [b]) == Relation.of(a)


def test_product():
    assert product([a], [b]) == Relation.of(tup(a, b))


def test_select():
    assert select([1, 2, 3], lambda v: v != 2) == Relation.of(1, 3)


def test_map():
    assert map_([1, 2], lambda v: v + 1) == Relation.of(2, 3)


def test_project():
    assert project([tup(a, b)], 2) == Relation.of(b)


def test_intersection():
    assert intersection([a, b], [b, c]) == Relation.of(b)


def test_exclusive_or():
    assert exclusive_or([a, b], [b, c]) == Relation.of(a, c)


def test_big_union():
    assert big_union([[a], [b], [c]]) == Relation.of(a, b, c)


def test_big_union_empty():
    assert big_union([]) == Relation.empty()
