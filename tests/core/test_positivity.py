"""Unit tests for polarity/monotonicity analysis (Definition 3.3, Section 4)."""

from repro.core.expressions import call, diff, ifp, map_, product, rel, select, setconst, union
from repro.core.funcs import Apply, Arg, CompareTest, Lit, TrueTest
from repro.core.positivity import (
    is_monotone_semantically,
    is_positive_ifp_expr,
    is_positive_in,
    occurs_negatively,
    polarity_of_names,
    subtracted_names,
)
from repro.relations import Atom, Relation, standard_registry

a = Atom("a")


class TestSubtractedNames:
    def test_plain_union_positive(self):
        assert subtracted_names(union(rel("A"), rel("B"))) == frozenset()

    def test_diff_right_negative(self):
        assert subtracted_names(diff(rel("A"), rel("B"))) == {"B"}

    def test_nested_subtraction_everything_under_diff_right(self):
        # The paper's criterion: "does not appear in a sub-expression being
        # subtracted" — double nesting still counts as subtracted.
        expr = diff(rel("A"), diff(rel("A"), rel("X")))
        assert subtracted_names(expr) == {"A", "X"}

    def test_ifp_param_not_free(self):
        expr = ifp("x", diff(rel("A"), rel("x")))
        assert subtracted_names(expr) == frozenset()

    def test_call_args_conservative(self):
        assert subtracted_names(call("f", rel("A"))) == {"A"}


class TestPositiveIfp:
    def test_positive_tc(self):
        body = union(rel("E"), map_(rel("x"), Arg()))
        assert is_positive_in(body, "x")
        assert is_positive_ifp_expr(ifp("x", body))

    def test_nonpositive_example4(self):
        body = diff(setconst(a), rel("x"))
        assert occurs_negatively(body, "x")
        assert not is_positive_ifp_expr(ifp("x", body))

    def test_inner_ifp_checked(self):
        inner = ifp("y", diff(rel("A"), rel("y")))
        outer = ifp("x", union(rel("x"), inner))
        assert not is_positive_ifp_expr(outer)


class TestPolarityMap:
    def test_mixed(self):
        expr = union(rel("A"), diff(rel("B"), rel("A")))
        polarity = polarity_of_names(expr)
        assert polarity == {"A": "mixed", "B": "positive"}

    def test_negative_only(self):
        expr = diff(setconst(a), rel("S"))
        assert polarity_of_names(expr)["S"] == "negative"


class TestSemanticOracle:
    def test_positive_body_is_monotone(self):
        body = union(rel("E"), rel("x"))
        assert is_monotone_semantically(
            body, "x", {"E": Relation.of(a)}, [a, Atom("b"), 1]
        )

    def test_subtracting_param_not_monotone(self):
        body = diff(setconst(a), rel("x"))
        assert not is_monotone_semantically(body, "x", {}, [a])

    def test_double_subtraction_is_monotone_despite_syntax(self):
        """A − (A − x) is semantically monotone even though x is
        syntactically 'subtracted' — the criterion is sufficient only."""
        A = Relation.of(a, Atom("b"))
        body = diff(rel("A"), diff(rel("A"), rel("x")))
        assert occurs_negatively(body, "x")
        assert is_monotone_semantically(body, "x", {"A": A}, list(A.items))

    def test_select_and_map_preserve_monotonicity(self):
        registry = standard_registry()
        body = map_(
            select(rel("x"), CompareTest("<", Arg(), Lit(10))),
            Apply("add2", (Arg(),)),
        )
        assert is_monotone_semantically(body, "x", {}, [1, 2, 3], registry)
