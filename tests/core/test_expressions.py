"""Unit tests for algebra expression syntax."""

import pytest

from repro.core.expressions import (
    Call,
    Diff,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
    call,
    diff,
    empty,
    free_rel_vars,
    ifp,
    intersect,
    map_,
    product,
    project,
    rel,
    select,
    setconst,
    substitute,
    union,
    walk,
)
from repro.core.funcs import Arg, Comp, TrueTest
from repro.relations import Atom

a = Atom("a")


class TestConstruction:
    def test_operator_sugar(self):
        expr = rel("A") | rel("B")
        assert isinstance(expr, Union)
        assert isinstance(rel("A") - rel("B"), Diff)
        assert isinstance(rel("A") * rel("B"), Product)

    def test_setconst(self):
        assert setconst(a, 1).values == frozenset({a, 1})
        assert empty().values == frozenset()

    def test_project_is_map_of_component(self):
        expr = project(rel("R"), 2)
        assert isinstance(expr, Map)
        assert expr.func == Comp(Arg(), 2)

    def test_intersect_is_double_diff(self):
        expr = intersect(rel("A"), rel("B"))
        assert expr == diff(rel("A"), diff(rel("A"), rel("B")))

    def test_relvar_needs_name(self):
        with pytest.raises(ValueError):
            RelVar("")

    def test_setconst_values_checked(self):
        with pytest.raises(TypeError):
            SetConst(frozenset({object()}))


class TestStructure:
    def test_walk_preorder(self):
        expr = union(rel("A"), diff(rel("B"), rel("C")))
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds == ["Union", "RelVar", "Diff", "RelVar", "RelVar"]

    def test_free_rel_vars(self):
        expr = union(rel("A"), select(rel("B"), TrueTest()))
        assert free_rel_vars(expr) == {"A", "B"}

    def test_ifp_binds_param(self):
        expr = ifp("x", union(rel("x"), rel("A")))
        assert free_rel_vars(expr) == {"A"}

    def test_call_args_contribute(self):
        expr = call("f", rel("A"), rel("B"))
        assert free_rel_vars(expr) == {"A", "B"}

    def test_called_names(self):
        from repro.core.expressions import called_names

        expr = union(call("f"), call("g", call("h")))
        assert called_names(expr) == {"f", "g", "h"}


class TestSubstitution:
    def test_basic(self):
        expr = union(rel("A"), rel("B"))
        replaced = substitute(expr, {"A": setconst(a)})
        assert replaced == union(setconst(a), rel("B"))

    def test_ifp_param_shadowing(self):
        expr = ifp("x", union(rel("x"), rel("A")))
        replaced = substitute(expr, {"x": setconst(a), "A": setconst(1)})
        # The bound x must NOT be replaced; the free A must.
        assert replaced == ifp("x", union(rel("x"), setconst(1)))

    def test_substitution_inside_call_args(self):
        expr = call("f", rel("A"))
        assert substitute(expr, {"A": rel("B")}) == call("f", rel("B"))

    def test_structure_preserved(self):
        inner = select(map_(rel("A"), Arg()), TrueTest())
        out = substitute(inner, {"A": rel("Z")})
        assert isinstance(out, Select)
        assert isinstance(out.child, Map)


def test_repr_smoke():
    expr = ifp("w", diff(setconst(a), rel("w")))
    assert "IFP" in repr(expr)
    assert "−" in repr(expr)
