"""Unit tests for IFP elimination (Theorem 3.5 / Corollary 3.6)."""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.evaluator import evaluate
from repro.core.expressions import diff, ifp, map_, product, rel, select, setconst, union
from repro.core.funcs import Arg, Comp, CompareTest, MkTup
from repro.core.ifp_elimination import eliminate_ifp, eliminate_ifp_auto
from repro.corpus import chain, cycle, edges_to_relation
from repro.relations import Atom, Relation

a, b = Atom("a"), Atom("b")


@pytest.fixture(scope="module")
def registry():
    return translation_registry()


def tc_query():
    grow = map_(
        select(
            product(rel("MOVE"), rel("x")),
            CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
        ),
        MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
    )
    return ifp("x", union(rel("MOVE"), grow))


class TestEliminateIfp:
    def test_result_is_ifp_free(self):
        free = eliminate_ifp(tc_query(), frozenset({"MOVE"}), stage_bound=8)
        assert not free.program.uses_ifp()
        assert free.program.dialect.value == "algebra="

    def test_nonpositive_query(self, registry):
        query = ifp("x", diff(setconst(a), rel("x")))
        free = eliminate_ifp(query, frozenset(), stage_bound=4)
        assert free.evaluate({}, registry=registry) == Relation.of(a)

    def test_positive_query_matches_direct(self, registry):
        env = {"MOVE": edges_to_relation(chain(5), "MOVE")}
        free = eliminate_ifp(tc_query(), frozenset({"MOVE"}), stage_bound=8)
        direct = evaluate(tc_query(), env, registry=registry)
        assert free.evaluate(env, registry=registry).items == direct.items

    def test_insufficient_bound_detected_by_auto(self, registry):
        env = {"MOVE": edges_to_relation(chain(8), "MOVE")}
        free = eliminate_ifp_auto(
            tc_query(), env, registry=registry, initial_bound=2
        )
        assert free.stage_bound >= 8
        direct = evaluate(tc_query(), env, registry=registry)
        assert free.evaluate(env, registry=registry).items == direct.items

    def test_auto_on_cycle(self, registry):
        env = {"MOVE": edges_to_relation(cycle(4), "MOVE")}
        free = eliminate_ifp_auto(tc_query(), env, registry=registry)
        direct = evaluate(tc_query(), env, registry=registry)
        assert free.evaluate(env, registry=registry).items == direct.items

    def test_auto_bound_cap(self, registry):
        query = ifp("x", diff(setconst(a, b), rel("x")))
        with pytest.raises(RuntimeError):
            # max_bound below the needed stages for any convergence check:
            eliminate_ifp_auto(
                query, {}, registry=registry, initial_bound=1, max_bound=1
            )

    def test_total_on_every_tested_database(self, registry):
        """Theorem 3.5's image lies in the well-defined fragment."""
        from repro.core.valid_eval import valid_evaluate

        free = eliminate_ifp(tc_query(), frozenset({"MOVE"}), stage_bound=8)
        for edges in (chain(4), cycle(3)):
            env = {"MOVE": edges_to_relation(edges, "MOVE")}
            outcome = valid_evaluate(free.program, env, registry=registry)
            assert outcome.is_well_defined()
