"""White-box tests for the native evaluator's machinery.

The behaviours here — candidate over-approximation, universe filtering of
MAP images, evaluation limits, the positive-dependency analysis behind the
derivation loop — are load-bearing for every result in the test suite but
are otherwise only exercised indirectly.
"""

import pytest

from repro.core.evaluator import NonTerminating
from repro.core.expressions import call, diff, map_, product, rel, select, setconst, union
from repro.core.funcs import Apply, Arg, CompareTest, Lit
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import EvalLimits, _positive_call_names, valid_evaluate
from repro.relations import Atom, Relation, Universe, standard_registry, tup

a, b, c = Atom("a"), Atom("b"), Atom("c")


class TestPositiveCallNames:
    def test_plain_positive(self):
        assert _positive_call_names(union(call("S"), rel("A"))) == {"S"}

    def test_subtracted_is_not_positive(self):
        assert _positive_call_names(diff(rel("A"), call("S"))) == frozenset()

    def test_double_subtraction_flips_back(self):
        expr = diff(rel("A"), diff(rel("A"), call("S")))
        assert _positive_call_names(expr) == {"S"}

    def test_mixed_occurrences(self):
        expr = union(call("S"), diff(rel("A"), call("T")))
        assert _positive_call_names(expr) == {"S"}


class TestCandidates:
    def test_candidates_ignore_subtraction(self):
        """The over-approximation treats Diff as its left side, so the
        candidate pool of S = A − S is all of A."""
        program = AlgebraProgram.of(
            Definition("S", (), diff(rel("A"), call("S"))),
            database_relations=["A"],
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {"A": Relation.of(a, b, name="A")})
        assert result.candidates["S"] == frozenset({a, b})

    def test_product_candidates_are_pairs(self):
        program = AlgebraProgram.of(
            Definition("S", (), product(rel("A"), rel("B"))),
            database_relations=["A", "B"],
            dialect=Dialect.ALGEBRA_EQ,
        )
        env = {"A": Relation.of(a, name="A"), "B": Relation.of(b, name="B")}
        result = valid_evaluate(program, env)
        assert result.candidates["S"] == frozenset({tup(a, b)})

    def test_select_prunes_candidates(self):
        program = AlgebraProgram.of(
            Definition(
                "S", (), select(rel("A"), CompareTest("<", Arg(), Lit(3)))
            ),
            database_relations=["A"],
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {"A": Relation.of(1, 2, 3, 4, name="A")})
        assert result.candidates["S"] == frozenset({1, 2})


class TestLimitsAndUniverse:
    def test_max_values_guard(self):
        program = AlgebraProgram.of(
            Definition(
                "S",
                (),
                union(setconst(0), map_(call("S"), Apply("succ", (Arg(),)))),
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )
        with pytest.raises(NonTerminating, match="exceeded"):
            valid_evaluate(
                program,
                {},
                registry=standard_registry(),
                limits=EvalLimits(max_rounds=10_000, max_values=50),
            )

    def test_max_rounds_guard(self):
        program = AlgebraProgram.of(
            Definition(
                "S",
                (),
                union(setconst(0), map_(call("S"), Apply("succ", (Arg(),)))),
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )
        with pytest.raises(NonTerminating, match="converge"):
            valid_evaluate(
                program,
                {},
                registry=standard_registry(),
                limits=EvalLimits(max_rounds=5, max_values=10_000),
            )

    def test_universe_filters_map_images(self):
        """MAP images outside the window never become candidates."""
        program = AlgebraProgram.of(
            Definition(
                "S",
                (),
                union(setconst(0), map_(call("S"), Apply("succ", (Arg(),)))),
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(
            program, {}, registry=standard_registry(), universe=Universe(range(4))
        )
        assert result.candidates["S"] == frozenset({0, 1, 2, 3})
        assert set(result.true["S"]) == {0, 1, 2, 3}

    def test_rounds_reported(self):
        program = AlgebraProgram.of(
            Definition("S", (), setconst(a)), dialect=Dialect.ALGEBRA_EQ
        )
        result = valid_evaluate(program, {})
        assert result.rounds >= 1


class TestMultiEquationInteraction:
    def test_chain_of_dependencies(self):
        """T reads S positively; U subtracts T: three strata in one
        system, everything decided."""
        program = AlgebraProgram.of(
            Definition("S", (), setconst(a, b)),
            Definition("T", (), union(call("S"), setconst(c))),
            Definition("U", (), diff(call("T"), call("S"))),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {})
        assert result.is_well_defined()
        assert set(result.true["U"]) == {c}

    def test_undefinedness_propagates_but_only_where_needed(self):
        """P depends on the paradoxical S; Q does not and stays decided."""
        program = AlgebraProgram.of(
            Definition("S", (), diff(setconst(a), call("S"))),
            Definition("P", (), union(call("S"), setconst(b))),
            Definition("Q", (), setconst(c)),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {})
        assert a in result.undefined["S"]
        assert a in result.undefined["P"]  # inherited
        assert b in result.true["P"]       # the decided part survives
        assert result.undefined["Q"] == frozenset()
