"""Unit tests for the two-valued algebra/IFP-algebra evaluator."""

import pytest

from repro.core.evaluator import NonTerminating, RecursionNotSupported, evaluate, evaluate_query
from repro.core.expressions import (
    call,
    diff,
    ifp,
    map_,
    product,
    project,
    rel,
    select,
    setconst,
    union,
)
from repro.core.funcs import Apply, Arg, Comp, CompareTest, Lit, MkTup
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.relations import Atom, Relation, standard_registry, tup

a, b, c, d = (Atom(x) for x in "abcd")


class TestBasicOperators:
    def test_relvar(self):
        assert evaluate(rel("A"), {"A": Relation.of(a)}) == Relation.of(a)

    def test_unbound_relvar(self):
        with pytest.raises(KeyError):
            evaluate(rel("A"), {})

    def test_setconst(self):
        assert evaluate(setconst(a, 1), {}) == Relation.of(a, 1)

    def test_union_diff_product(self):
        env = {"A": Relation.of(a, b), "B": Relation.of(b, c)}
        assert evaluate(union(rel("A"), rel("B")), env) == Relation.of(a, b, c)
        assert evaluate(diff(rel("A"), rel("B")), env) == Relation.of(a)
        assert evaluate(product(rel("A"), rel("B")), env) == Relation.of(
            tup(a, b), tup(a, c), tup(b, b), tup(b, c)
        )

    def test_select(self):
        env = {"A": Relation.of(1, 2, 3)}
        expr = select(rel("A"), CompareTest(">", Arg(), Lit(1)))
        assert evaluate(expr, env) == Relation.of(2, 3)

    def test_map(self):
        env = {"A": Relation.of(1, 2)}
        expr = map_(rel("A"), Apply("double", (Arg(),)))
        assert evaluate(expr, env, standard_registry()) == Relation.of(2, 4)

    def test_map_drops_undefined(self):
        env = {"A": Relation.of(0, 3)}
        expr = map_(rel("A"), Apply("pred", (Arg(),)))
        assert evaluate(expr, env, standard_registry()) == Relation.of(2)

    def test_project(self):
        env = {"R": Relation.of(tup(a, b), tup(c, d))}
        assert evaluate(project(rel("R"), 2), env) == Relation.of(b, d)


class TestIfp:
    def test_transitive_closure(self):
        move = Relation.of(tup(a, b), tup(b, c), tup(c, d))
        join = map_(
            select(
                product(rel("MOVE"), rel("x")),
                CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
            ),
            MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
        )
        tc = ifp("x", union(rel("MOVE"), join))
        result = evaluate(tc, {"MOVE": move})
        assert tup(a, d) in result
        assert len(result) == 6

    def test_example4_nonpositive(self):
        """IFP_{{a}−x} = {a} (the inflationary reading, Section 3.2)."""
        expr = ifp("x", diff(setconst(a), rel("x")))
        assert evaluate(expr, {}) == Relation.of(a)

    def test_nested_double_subtraction_is_empty(self):
        """IFP of exp(x) = A − (A − x) from ∅: exp(∅) = ∅, fixpoint ∅."""
        env = {"A": Relation.of(a, b)}
        expr = ifp("x", diff(rel("A"), diff(rel("A"), rel("x"))))
        assert evaluate(expr, env) == Relation.empty()

    def test_divergence_detected(self):
        registry = standard_registry()
        expr = ifp("x", union(setconst(0), map_(rel("x"), Apply("succ", (Arg(),)))))
        with pytest.raises(NonTerminating):
            evaluate(expr, {}, registry, max_iterations=50)

    def test_bounded_generation_converges(self):
        registry = standard_registry()
        grow = map_(
            select(rel("x"), CompareTest("<", Arg(), Lit(10))),
            Apply("add2", (Arg(),)),
        )
        expr = ifp("x", union(setconst(0), grow))
        result = evaluate(expr, {}, registry)
        assert result == Relation.of(0, 2, 4, 6, 8, 10)

    def test_param_scoping(self):
        outer = ifp("x", union(setconst(a), ifp("x", rel("x"))))
        assert evaluate(outer, {}) == Relation.of(a)


class TestCalls:
    def test_nonrecursive_call(self):
        inter = Definition("inter", ("s", "t"), diff(rel("s"), diff(rel("s"), rel("t"))))
        program = AlgebraProgram.of(inter, database_relations=["A", "B"])
        env = {"A": Relation.of(a, b), "B": Relation.of(b, c)}
        result = evaluate(call("inter", rel("A"), rel("B")), env, program=program)
        assert result == Relation.of(b)

    def test_recursive_call_rejected(self):
        program = AlgebraProgram.of(
            Definition("S", (), union(setconst(a), call("S"))),
            dialect=Dialect.ALGEBRA_EQ,
        )
        with pytest.raises(RecursionNotSupported):
            evaluate(call("S"), {}, program=program)

    def test_call_without_program_rejected(self):
        with pytest.raises(RecursionNotSupported):
            evaluate(call("f"), {})

    def test_evaluate_query(self):
        program = AlgebraProgram.of(
            Definition("Q", (), union(setconst(a), setconst(b)))
        )
        result = evaluate_query(program, "Q", {})
        assert result == Relation.of(a, b)
        assert result.name == "Q"

    def test_evaluate_query_must_be_constant(self):
        program = AlgebraProgram.of(Definition("f", ("x",), rel("x")))
        with pytest.raises(ValueError):
            evaluate_query(program, "f", {})
