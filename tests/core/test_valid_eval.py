"""Unit tests for the native three-valued ``algebra=`` evaluator."""

import pytest

from repro.core.evaluator import NonTerminating
from repro.core.expressions import (
    call,
    diff,
    ifp,
    map_,
    product,
    project,
    rel,
    select,
    setconst,
    union,
)
from repro.core.funcs import Apply, Arg, CompareTest, Lit
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import EvalLimits, IfpThroughRecursion, valid_evaluate
from repro.datalog.semantics import Truth
from repro.relations import Atom, Relation, Universe, standard_registry, tup

a, b, c, d = (Atom(x) for x in "abcd")


def win_program():
    return AlgebraProgram.of(
        Definition(
            "WIN",
            (),
            project(
                diff(rel("MOVE"), product(project(rel("MOVE"), 1), call("WIN"))), 1
            ),
        ),
        database_relations=["MOVE"],
        dialect=Dialect.ALGEBRA_EQ,
    )


class TestParadoxes:
    def test_s_equals_a_minus_s_undefined(self):
        """Section 3.2: 'the membership status of a in S is undefined, and
        there is no initial valid model'."""
        program = AlgebraProgram.of(
            Definition("S", (), diff(setconst(a), call("S"))),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {})
        assert result.truth_of("S", a) is Truth.UNDEFINED
        assert not result.is_well_defined()

    def test_proposition_3_2_construction(self):
        """S' = σ_{EQ(x,a)}(S) − S' is undefined iff a ∈ S."""
        def program_with(base_members):
            return (
                AlgebraProgram.of(
                    Definition("S", (), setconst(*base_members)),
                    Definition(
                        "Sp",
                        (),
                        diff(
                            select(call("S"), CompareTest("=", Arg(), Lit(a))),
                            call("Sp"),
                        ),
                    ),
                    dialect=Dialect.ALGEBRA_EQ,
                )
            )

        with_a = valid_evaluate(program_with([a, b]), {})
        assert with_a.truth_of("Sp", a) is Truth.UNDEFINED
        without_a = valid_evaluate(program_with([b]), {})
        assert without_a.is_well_defined()
        assert len(without_a.true["Sp"]) == 0

    def test_double_subtraction_collapses(self):
        """S = A − (A − S) has the total model S = ∅ (membership
        inversion composes to the identity)."""
        program = AlgebraProgram.of(
            Definition("S", (), diff(rel("A"), diff(rel("A"), call("S")))),
            database_relations=["A"],
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {"A": Relation.of(a, b, name="A")})
        assert result.is_well_defined()
        assert result.relation("S") == Relation.empty()


class TestWinGame:
    def test_acyclic_total(self):
        move = Relation.from_pairs([(a, b), (b, c), (c, d)], name="MOVE")
        result = valid_evaluate(win_program(), {"MOVE": move})
        assert result.is_well_defined()
        assert result.relation("WIN") == Relation.of(a, c)

    def test_self_loop_undefined(self):
        move = Relation.from_pairs([(a, a)], name="MOVE")
        result = valid_evaluate(win_program(), {"MOVE": move})
        assert result.truth_of("WIN", a) is Truth.UNDEFINED

    def test_cycle_with_escape_total(self):
        move = Relation.from_pairs([(a, b), (b, a), (b, c)], name="MOVE")
        result = valid_evaluate(win_program(), {"MOVE": move})
        # b can move to c (a sink), so b wins; a's only move is to the
        # winning b, so a loses. Everything is decided.
        assert result.is_well_defined()
        assert result.relation("WIN") == Relation.of(b)

    def test_empty_move(self):
        result = valid_evaluate(
            win_program(), {"MOVE": Relation.empty("MOVE")}
        )
        assert result.is_well_defined()
        assert len(result.relation("WIN")) == 0


class TestMonotonePrograms:
    def test_tc_total_and_correct(self):
        from repro.corpus import algebra_case, chain, edges_to_relation

        program = algebra_case("transitive-closure").program
        move = edges_to_relation(chain(5), "MOVE")
        from repro.core.algebra_to_datalog import translation_registry

        result = valid_evaluate(program, {"MOVE": move}, registry=translation_registry())
        assert result.is_well_defined()
        assert len(result.relation("TC")) == 10  # C(5,2) pairs along a chain

    def test_even_numbers_with_universe(self):
        """Example 3: S^e = {0} ∪ MAP_{+2}(S^e), bounded window."""
        program = AlgebraProgram.of(
            Definition(
                "Se", (), union(setconst(0), map_(call("Se"), Apply("add2", (Arg(),))))
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )
        result = valid_evaluate(
            program, {}, registry=standard_registry(), universe=Universe(range(0, 11))
        )
        assert result.is_well_defined()
        assert set(result.true["Se"]) == {0, 2, 4, 6, 8, 10}
        assert result.truth_of("Se", 7) is Truth.FALSE

    def test_unbounded_generation_raises(self):
        program = AlgebraProgram.of(
            Definition(
                "Se", (), union(setconst(0), map_(call("Se"), Apply("add2", (Arg(),))))
            ),
            dialect=Dialect.ALGEBRA_EQ,
        )
        with pytest.raises(NonTerminating):
            valid_evaluate(
                program,
                {},
                registry=standard_registry(),
                limits=EvalLimits(max_rounds=20, max_values=100),
            )


class TestIfpHandling:
    def test_standalone_ifp_pre_evaluated(self):
        """An IFP that does not reach a recursive name is an ordinary
        IFP-algebra subquery (total, Theorem 3.1)."""
        move = Relation.from_pairs([(a, b), (b, c)], name="MOVE")
        tc_by_ifp = ifp("x", union(rel("MOVE"), rel("x")))
        program = AlgebraProgram.of(
            Definition("T", (), tc_by_ifp),
            Definition("S", (), union(call("T"), call("S"))),
            database_relations=["MOVE"],
            dialect=Dialect.IFP_ALGEBRA_EQ,
        )
        result = valid_evaluate(program, {"MOVE": move})
        assert result.is_well_defined()
        assert result.relation("T") == move

    def test_ifp_through_recursion_rejected(self):
        program = AlgebraProgram.of(
            Definition("S", (), ifp("x", union(rel("x"), call("S")))),
            dialect=Dialect.IFP_ALGEBRA_EQ,
        )
        with pytest.raises(IfpThroughRecursion):
            valid_evaluate(program, {})


class TestResultApi:
    def test_relation_and_candidates(self):
        program = win_program()
        move = Relation.from_pairs([(a, b)], name="MOVE")
        result = valid_evaluate(program, {"MOVE": move})
        assert result.names() == {"WIN"}
        assert a in result.candidates["WIN"]
        assert result.relation("WIN").name == "WIN"

    def test_truth_outside_candidates_is_false(self):
        program = win_program()
        move = Relation.from_pairs([(a, b)], name="MOVE")
        result = valid_evaluate(program, {"MOVE": move})
        assert result.truth_of("WIN", Atom("zzz")) is Truth.FALSE
