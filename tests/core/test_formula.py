"""Unit tests for the calculus layer (formulas, NNF, rule emission)."""

import pytest

from repro.core.formula import (
    Cmp,
    DnfBlowup,
    FAnd,
    FExists,
    FNot,
    FOr,
    FreshNames,
    MemAtom,
    TRUE_FORMULA,
    FALSE_FORMULA,
    formula_to_rules,
    free_vars,
    substitute_formula,
    to_nnf,
)
from repro.datalog.ast import Comparison, Const, Literal, PredAtom, Var
from repro.relations import Atom

X, Y = Var("X"), Var("Y")
a = Atom("a")


class TestNnf:
    def test_double_negation_eliminated(self):
        atom = MemAtom("S", X)
        assert to_nnf(FNot(FNot(atom))) == atom

    def test_de_morgan(self):
        left, right = MemAtom("A", X), MemAtom("B", X)
        nnf = to_nnf(FNot(FAnd((left, right))))
        assert nnf == FOr((FNot(left), FNot(right)))

    def test_comparison_complemented(self):
        cmp_ = Cmp("<", X, Y)
        assert to_nnf(FNot(cmp_)) == Cmp(">=", X, Y)
        assert to_nnf(FNot(Cmp("=", X, Y))) == Cmp("!=", X, Y)

    def test_negated_exists_kept_as_block(self):
        inner = FExists((Y,), MemAtom("S", Y))
        nnf = to_nnf(FNot(inner))
        assert isinstance(nnf, FNot)
        assert isinstance(nnf.child, FExists)

    def test_nnf_inside_negated_exists(self):
        inner = FExists((Y,), FNot(FNot(MemAtom("S", Y))))
        nnf = to_nnf(FNot(inner))
        assert nnf.child.child == MemAtom("S", Y)


class TestStructure:
    def test_free_vars(self):
        formula = FExists((Y,), FAnd((MemAtom("S", Y), Cmp("=", X, Y))))
        assert free_vars(formula) == {X}

    def test_substitute_respects_binding(self):
        formula = FExists((Y,), Cmp("=", X, Y))
        replaced = substitute_formula(formula, {X: Const(a), Y: Const(1)})
        assert replaced == FExists((Y,), Cmp("=", Const(a), Y))


class TestRuleEmission:
    def test_disjunction_splits_rules(self):
        head = PredAtom("q", (X,))
        formula = FOr((MemAtom("A", X), MemAtom("B", X)))
        rules = formula_to_rules(head, formula, {}, FreshNames())
        assert len(rules) == 2

    def test_negated_atom_becomes_negative_literal(self):
        head = PredAtom("q", (X,))
        formula = FAnd((MemAtom("A", X), FNot(MemAtom("B", X))))
        (rule,) = formula_to_rules(head, formula, {}, FreshNames())
        assert rule.negative_literals()[0].atom.predicate == "B"

    def test_negated_exists_becomes_aux_predicate(self):
        head = PredAtom("q", (X,))
        inner = FExists((Y,), FAnd((MemAtom("E", Y), Cmp("=", X, Y))))
        formula = FAnd((MemAtom("A", X), FNot(inner)))
        rules = formula_to_rules(head, formula, {}, FreshNames())
        assert len(rules) == 2  # one aux definition + the main rule
        aux_rules = [r for r in rules if r.head.predicate.startswith("aux")]
        assert len(aux_rules) == 1

    def test_positive_exists_flattened(self):
        head = PredAtom("q", (X,))
        formula = FExists((Y,), FAnd((MemAtom("E", Y), Cmp("=", X, Y))))
        (rule,) = formula_to_rules(head, formula, {}, FreshNames())
        # The bound variable was renamed fresh, no aux predicates.
        assert rule.head.predicate == "q"
        assert len(rule.positive_literals()) == 1

    def test_true_conjunct_dropped(self):
        head = PredAtom("q", (X,))
        formula = FAnd((MemAtom("A", X), TRUE_FORMULA))
        (rule,) = formula_to_rules(head, formula, {}, FreshNames())
        assert len(rule.body) == 1

    def test_false_disjunct_dropped(self):
        head = PredAtom("q", (X,))
        formula = FOr((MemAtom("A", X), FALSE_FORMULA))
        rules = formula_to_rules(head, formula, {}, FreshNames())
        assert len(rules) == 1

    def test_predicate_mapping_applied(self):
        head = PredAtom("q", (X,))
        formula = MemAtom("S", X)
        (rule,) = formula_to_rules(head, formula, {"S": "s_pred"}, FreshNames())
        assert rule.positive_literals()[0].atom.predicate == "s_pred"

    def test_dnf_blowup_guard(self):
        head = PredAtom("q", (X,))
        pairs = [
            FOr((MemAtom(f"A{i}", X), MemAtom(f"B{i}", X))) for i in range(12)
        ]
        formula = FAnd(tuple(pairs))
        with pytest.raises(DnfBlowup):
            formula_to_rules(head, formula, {}, FreshNames(), dnf_limit=100)


class TestFreshNames:
    def test_unique(self):
        fresh = FreshNames()
        assert fresh.var("X") != fresh.var("X")
        assert fresh.pred() != fresh.pred()
