"""Unit tests for the deduction → algebra translation (Proposition 6.1)."""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.datalog_to_algebra import datalog_to_algebra, rule_to_expression
from repro.core.encoding import UNIT, database_to_environment
from repro.core.evaluator import evaluate
from repro.core.expressions import Call, RelVar
from repro.core.programs import Dialect
from repro.core.valid_eval import valid_evaluate
from repro.datalog import Database
from repro.datalog.grounding import UnsafeRuleError
from repro.datalog.parser import parse_program, parse_rule
from repro.relations import Atom, Relation, tup

a, b, c = Atom("a"), Atom("b"), Atom("c")


class TestRuleToExpression:
    def _eval(self, source, env, idb=frozenset(), arities=None):
        rule = parse_rule(source)
        program = parse_program(source)
        arities = arities or program.arities()
        expr = rule_to_expression(rule, frozenset(idb), arities)
        return evaluate(expr, env, registry=translation_registry())

    def test_single_literal(self):
        env = {"e": Relation.of(a, b, name="e")}
        assert self._eval("p(X) :- e(X).", env) == Relation.of(a, b)

    def test_join(self):
        env = {"e": Relation.of(tup(a, b), tup(b, c), name="e")}
        result = self._eval("p(X, Z) :- e(X, Y), e(Y, Z).", env)
        assert result == Relation.of(tup(a, c))

    def test_constant_in_literal(self):
        env = {"e": Relation.of(tup(a, b), tup(b, c), name="e")}
        assert self._eval("p(X) :- e(a, X).", env) == Relation.of(b)

    def test_repeated_variable(self):
        env = {"e": Relation.of(tup(a, a), tup(a, b), name="e")}
        assert self._eval("p(X) :- e(X, X).", env) == Relation.of(a)

    def test_negative_literal(self):
        env = {
            "e": Relation.of(a, b, name="e"),
            "q": Relation.of(b, name="q"),
        }
        assert self._eval("p(X) :- e(X), not q(X).", env) == Relation.of(a)

    def test_negative_binary_literal(self):
        env = {
            "e": Relation.of(a, b, name="e"),
            "r": Relation.of(tup(a, b), name="r"),
        }
        result = self._eval("p(X, Y) :- e(X), e(Y), not r(X, Y).", env)
        assert tup(a, b) not in result
        assert tup(b, a) in result
        assert len(result) == 3

    def test_assignment(self):
        env = {"e": Relation.of(1, 2, name="e")}
        assert self._eval("p(Y) :- e(X), Y = add2(X).", env) == Relation.of(3, 4)

    def test_comparison_test(self):
        env = {"e": Relation.of(1, 2, 3, name="e")}
        assert self._eval("p(X) :- e(X), X >= 2.", env) == Relation.of(2, 3)

    def test_head_tuple_construction(self):
        env = {"e": Relation.of(a, name="e")}
        result = self._eval("p(X, X) :- e(X).", env)
        assert result == Relation.of(tup(a, a))

    def test_ground_rule(self):
        result = self._eval("p(a) :- 1 = 1.", {})
        assert result == Relation.of(a)

    def test_zero_arity_head(self):
        env = {"e": Relation.of(a, name="e")}
        assert self._eval("p :- e(X).", env) == Relation.of(UNIT)

    def test_zero_arity_negative_body(self):
        program = parse_program("p :- not q.\nq.")
        rule = program.rules[0]
        expr = rule_to_expression(rule, frozenset({"q"}), program.arities())
        # q is IDB → referenced as a Call
        from repro.core.expressions import walk

        assert any(isinstance(n, Call) and n.name == "q" for n in walk(expr))

    def test_unsafe_rule_rejected(self):
        with pytest.raises(UnsafeRuleError):
            rule_to_expression(
                parse_rule("p(X) :- not q(X)."), frozenset(), {"p": 1, "q": 1}
            )


class TestProgramTranslation:
    def test_result_structure(self):
        program = parse_program(
            "tc(X, Y) :- move(X, Y).\ntc(X, Z) :- move(X, Y), tc(Y, Z)."
        )
        translation = datalog_to_algebra(program)
        assert translation.program.dialect == Dialect.ALGEBRA_EQ
        assert {d.name for d in translation.program.definitions} == {"tc"}
        assert translation.program.database_relations == {"move"}
        assert translation.arities == {"tc": 2, "move": 2}

    def test_multiple_rules_union(self):
        program = parse_program("p(X) :- e(X).\np(X) :- f(X).")
        translation = datalog_to_algebra(program)
        body = translation.program.definition("p").body
        from repro.core.expressions import Union as UnionExpr

        assert isinstance(body, UnionExpr)

    def test_execution_matches_deduction(self):
        program = parse_program(
            "tc(X, Y) :- move(X, Y).\ntc(X, Z) :- move(X, Y), tc(Y, Z)."
        )
        db = Database()
        for s, t in [(a, b), (b, c)]:
            db.add("move", s, t)
        translation = datalog_to_algebra(program)
        env = database_to_environment(db)
        result = valid_evaluate(
            translation.program, env, registry=translation_registry()
        )
        assert result.is_well_defined()
        assert result.relation("tc") == Relation.of(tup(a, b), tup(b, c), tup(a, c))
