"""Unit tests for the well-definedness analyzer (around Prop 3.2)."""

import pytest

from repro.core.well_defined import (
    Verdict,
    check_well_defined,
    is_call_stratified,
    recursion_polarity,
)
from repro.corpus import ALGEBRA_CORPUS, chain, cycle, edges_to_relation
from repro.core.algebra_to_datalog import translation_registry
from repro.lang import parse_algebra_program
from repro.core.programs import Dialect
from repro.relations import Atom, Relation


def _program(source):
    return parse_algebra_program(source, dialect=Dialect.ALGEBRA_EQ)


class TestPolarityGraph:
    def test_positive_self_loop(self):
        program = ALGEBRA_CORPUS["transitive-closure"].program
        graph = recursion_polarity(program)
        assert graph.has_edge("TC", "TC")
        assert not graph["TC"]["TC"]["negative"]

    def test_negative_self_loop(self):
        program = ALGEBRA_CORPUS["win-game"].program
        graph = recursion_polarity(program)
        assert graph["WIN"]["WIN"]["negative"]

    def test_cross_definition_edges(self):
        program = _program(
            """
            relations A;
            P = A u Q;
            Q = A - P;
            """
        )
        graph = recursion_polarity(program)
        assert not graph["P"]["Q"]["negative"]
        assert graph["Q"]["P"]["negative"]


class TestCallStratified:
    def test_monotone_recursion_is_stratified(self):
        assert is_call_stratified(ALGEBRA_CORPUS["transitive-closure"].program)

    def test_win_is_not(self):
        assert not is_call_stratified(ALGEBRA_CORPUS["win-game"].program)

    def test_negation_below_recursion_is_stratified(self):
        program = _program(
            """
            relations MOVE;
            TC = MOVE u map[[it.1.1, it.2.2]](sigma[it.1.2 = it.2.1](MOVE * TC));
            NOTC = (pi1(MOVE) * pi2(MOVE)) - TC;
            """
        )
        assert is_call_stratified(program)

    def test_mutual_negative_cycle_is_not(self):
        program = _program("relations A;\nP = A - Q;\nQ = A - P;")
        assert not is_call_stratified(program)


class TestCheckWellDefined:
    @pytest.fixture(scope="class")
    def registry(self):
        return translation_registry()

    def test_total_always(self, registry):
        program = ALGEBRA_CORPUS["transitive-closure"].program
        env = {"MOVE": edges_to_relation(cycle(4), "MOVE")}
        report = check_well_defined(program, env, registry=registry)
        assert report.verdict is Verdict.TOTAL_ALWAYS
        assert report.is_well_defined()

    def test_total_here(self, registry):
        program = ALGEBRA_CORPUS["win-game"].program
        env = {"MOVE": edges_to_relation(chain(5), "MOVE")}
        report = check_well_defined(program, env, registry=registry)
        assert report.verdict is Verdict.TOTAL_HERE  # not call-stratified
        assert not report.call_stratified

    def test_undefined_here_with_witness(self, registry):
        program = _program("relations A;\nS = A - S;")
        env = {"A": Relation.of(Atom("a"), name="A")}
        report = check_well_defined(program, env, registry=registry)
        assert report.verdict is Verdict.UNDEFINED_HERE
        assert not report.is_well_defined()
        assert report.witnesses == (("S", Atom("a")),)

    def test_double_subtraction_semantically_fine(self, registry):
        """Syntactically non-stratified (conservative) but total here —
        the sufficient condition is not necessary."""
        program = _program("relations A;\nS = A - (A - S);")
        env = {"A": Relation.of(Atom("a"), Atom("b"), name="A")}
        report = check_well_defined(program, env, registry=registry)
        assert not report.call_stratified
        assert report.verdict is Verdict.TOTAL_HERE
