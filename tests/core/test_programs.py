"""Unit tests for algebra programs and dialect validation (Section 3.2)."""

import pytest

from repro.core.expressions import Call, call, diff, ifp, rel, setconst, union
from repro.core.programs import (
    AlgebraProgram,
    AlgebraQuery,
    Definition,
    Dialect,
    ExpansionLimitExceeded,
    ProgramError,
)
from repro.relations import Atom

a = Atom("a")


def _win_definition():
    from repro.core.expressions import product, project

    return Definition(
        "WIN",
        (),
        project(diff(rel("MOVE"), product(project(rel("MOVE"), 1), call("WIN"))), 1),
    )


class TestDefinition:
    def test_arity(self):
        definition = Definition("f", ("x", "y"), union(rel("x"), rel("y")))
        assert definition.arity == 2

    def test_duplicate_params_rejected(self):
        with pytest.raises(ProgramError):
            Definition("f", ("x", "x"), rel("x"))

    def test_name_shadowing_param_rejected(self):
        with pytest.raises(ProgramError):
            Definition("f", ("f",), rel("f"))


class TestValidation:
    def test_free_variables_checked(self):
        with pytest.raises(ProgramError, match="free relation variables"):
            AlgebraProgram.of(Definition("S", (), rel("MYSTERY")))

    def test_database_relations_allowed(self):
        program = AlgebraProgram.of(
            Definition("S", (), rel("R")), database_relations=["R"]
        )
        assert program.database_relations == {"R"}

    def test_unknown_call_rejected(self):
        with pytest.raises(ProgramError, match="undefined operation"):
            AlgebraProgram.of(Definition("S", (), call("nope")))

    def test_call_arity_checked(self):
        f = Definition("f", ("x",), rel("x"))
        with pytest.raises(ProgramError, match="called with"):
            AlgebraProgram.of(f, Definition("S", (), call("f")))

    def test_duplicate_definitions_rejected(self):
        with pytest.raises(ProgramError, match="multiple equations"):
            AlgebraProgram.of(
                Definition("S", (), setconst(a)), Definition("S", (), setconst(a))
            )

    def test_name_clash_with_relation_rejected(self):
        with pytest.raises(ProgramError):
            AlgebraProgram.of(
                Definition("R", (), setconst(a)), database_relations=["R"]
            )

    def test_dialect_ifp_restriction(self):
        definition = Definition("S", (), ifp("x", union(rel("x"), setconst(a))))
        with pytest.raises(ProgramError, match="IFP"):
            AlgebraProgram.of(definition, dialect=Dialect.ALGEBRA_EQ)
        AlgebraProgram.of(definition, dialect=Dialect.IFP_ALGEBRA_EQ)  # fine

    def test_dialect_recursion_restriction(self):
        with pytest.raises(ProgramError, match="recursive"):
            AlgebraProgram.of(_win_definition(), database_relations=["MOVE"],
                              dialect=Dialect.ALGEBRA)
        AlgebraProgram.of(_win_definition(), database_relations=["MOVE"],
                          dialect=Dialect.ALGEBRA_EQ)  # fine


class TestCallGraph:
    def test_recursion_detected(self):
        program = AlgebraProgram.of(
            _win_definition(), database_relations=["MOVE"]
        )
        assert program.is_recursive()
        assert program.recursive_names() == {"WIN"}

    def test_mutual_recursion(self):
        program = AlgebraProgram.of(
            Definition("P", (), union(setconst(a), call("Q"))),
            Definition("Q", (), diff(call("P"), setconst(a))),
        )
        assert program.recursive_names() == {"P", "Q"}

    def test_nonrecursive(self):
        program = AlgebraProgram.of(
            Definition("f", ("x",), diff(rel("x"), setconst(a))),
            Definition("S", (), call("f", setconst(a, 1))),
        )
        assert not program.is_recursive()

    def test_uses_ifp(self):
        program = AlgebraProgram.of(
            Definition("S", (), ifp("x", union(rel("x"), setconst(a))))
        )
        assert program.uses_ifp()


class TestInlining:
    def test_nonrecursive_calls_are_sugar(self):
        """Non-recursive definitions expand away completely (Section 3.2:
        'the extension is then just a convenience')."""
        inter = Definition("inter", ("s", "t"), diff(rel("s"), diff(rel("s"), rel("t"))))
        program = AlgebraProgram.of(inter, database_relations=["A", "B"])
        expanded = program.inline_nonrecursive(call("inter", rel("A"), rel("B")))
        assert expanded == diff(rel("A"), diff(rel("A"), rel("B")))
        from repro.core.expressions import called_names

        assert not called_names(expanded)

    def test_nested_calls_expand(self):
        f = Definition("f", ("x",), union(rel("x"), setconst(a)))
        g = Definition("g", ("y",), call("f", rel("y")))
        program = AlgebraProgram.of(f, g, database_relations=["R"])
        expanded = program.inline_nonrecursive(call("g", rel("R")))
        assert expanded == union(rel("R"), setconst(a))

    def test_to_constant_system(self):
        inter = Definition("inter", ("s", "t"), diff(rel("s"), diff(rel("s"), rel("t"))))
        win = _win_definition()
        program = AlgebraProgram.of(
            inter,
            win,
            Definition("BOTH", (), call("inter", call("WIN"), setconst(a))),
            database_relations=["MOVE"],
        )
        system = program.to_constant_system()
        assert {d.name for d in system.definitions} == {"WIN", "BOTH"}
        assert all(d.arity == 0 for d in system.definitions)

    def test_parameter_recursion_rejected(self):
        f = Definition("f", ("x",), union(rel("x"), call("f", rel("x"))))
        program = AlgebraProgram.of(f, Definition("S", (), call("f", setconst(a))))
        with pytest.raises(ExpansionLimitExceeded):
            program.to_constant_system()


class TestQuery:
    def test_result_must_exist(self):
        program = AlgebraProgram.of(Definition("S", (), setconst(a)))
        AlgebraQuery(program, "S")
        with pytest.raises(KeyError):
            AlgebraQuery(program, "T")
