"""Unit tests for the Proposition 5.2 staging transformation."""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.staging import STAGE_PREDICATE, run_staged, stage_program
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database
from repro.datalog import Database, ground, run
from repro.datalog.parser import parse_program
from repro.datalog.semantics import inflationary_fixpoint
from repro.datalog.stratification import is_locally_stratified
from repro.relations import Atom

a = Atom("a")


class TestStageProgram:
    def test_shape(self):
        program = parse_program("q(X) :- r(X), not q(X).\nr(a).")
        staged = stage_program(program, stage_bound=3)
        heads = {rule.head.predicate for rule in staged.rules}
        assert {"q__s", "r__s", "q", "r", STAGE_PREDICATE} <= heads

    def test_program_facts_enter_at_stage_zero(self):
        program = parse_program("r(a).")
        staged = stage_program(program, stage_bound=1)
        fact_rules = [r for r in staged.rules if r.head.predicate == "r__s" and r.is_fact()]
        assert len(fact_rules) == 1
        assert fact_rules[0].head.args[0].value == 0

    def test_stage_facts_materialised(self):
        program = parse_program("r(a).")
        staged = stage_program(program, stage_bound=5)
        stage_facts = [r for r in staged.rules if r.head.predicate == STAGE_PREDICATE]
        assert len(stage_facts) == 6  # 0..5

    def test_edb_literals_unstaged(self):
        program = parse_program("q(X) :- e(X), not q(X).")
        staged = stage_program(program, stage_bound=2)
        q_rules = [r for r in staged.rules if r.head.predicate == "q__s" and not r.is_fact()]
        main = q_rules[0]
        predicates = [lit.atom.predicate for lit in main.positive_literals()]
        assert "e" in predicates  # not e__s

    def test_staged_ground_program_locally_stratified(self):
        """The construction's point: 'new facts can only be derived using
        facts with smaller indexes' — no negative cycles remain."""
        program = DEDUCTIVE_CORPUS["win-move"].program
        staged = stage_program(program, stage_bound=6)
        gp = ground(
            staged,
            edges_to_database(cycle(3)),
            registry=translation_registry(),
        )
        assert is_locally_stratified(gp)


class TestRunStaged:
    @pytest.mark.parametrize("edges", [chain(5), cycle(3), cycle(4)])
    def test_valid_of_staged_equals_inflationary(self, edges):
        """Proposition 5.2: R(a) holds inflationarily in P iff R(a) holds
        validly in P'."""
        program = DEDUCTIVE_CORPUS["win-move"].program
        database = edges_to_database(edges)
        registry = translation_registry()

        inflationary = run(program, database, semantics="inflationary", registry=registry)
        staged = run_staged(program, database, semantics="valid", registry=registry)
        assert staged.converged
        assert staged.result.true_rows("win") == inflationary.true_rows("win")

    def test_example4(self):
        """Example 4's program: the staged valid answer is {a}."""
        program = parse_program("r(a).\nq(X) :- r(X), not q(X).")
        registry = translation_registry()
        direct = run(program, Database(), semantics="valid", registry=registry)
        assert direct.undefined_rows("q") == {(a,)}
        staged = run_staged(program, Database(), semantics="valid", registry=registry)
        assert staged.result.true_rows("q") == {(a,)}
        assert staged.result.undefined_rows("q") == frozenset()

    def test_bound_doubles_until_convergence(self):
        # A chain of n dependent steps needs ~n stages; start tiny.
        program = parse_program(
            "p0(a).\n" + "\n".join(f"p{i}(X) :- p{i-1}(X), not q{i}(X)." for i in range(1, 9))
        )
        registry = translation_registry()
        staged = run_staged(
            program, Database(), semantics="valid", registry=registry, initial_bound=2
        )
        assert staged.converged
        assert staged.stage_bound >= 8
        assert staged.result.true_rows("p8") == {(a,)}

    def test_positive_program_unchanged(self):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        database = edges_to_database(chain(4))
        registry = translation_registry()
        plain = run(program, database, semantics="valid", registry=registry)
        staged = run_staged(program, database, semantics="valid", registry=registry)
        assert staged.result.true_rows("tc") == plain.true_rows("tc")
