"""Unit tests for the relation ↔ predicate encoding."""

import pytest

from repro.core.encoding import (
    UNIT,
    database_to_environment,
    environment_to_database,
    relation_rows,
    row_to_value,
    rows_to_relation,
    value_to_row,
)
from repro.datalog.database import Database
from repro.relations import Atom, Relation, Tup, tup

a, b = Atom("a"), Atom("b")


class TestRows:
    def test_arity_zero(self):
        assert row_to_value(()) == UNIT
        assert value_to_row(UNIT, 0) == ()

    def test_arity_one(self):
        assert row_to_value((a,)) == a
        assert value_to_row(a, 1) == (a,)

    def test_arity_two(self):
        assert row_to_value((a, b)) == tup(a, b)
        assert value_to_row(tup(a, b), 2) == (a, b)

    def test_round_trip(self):
        for row in [(), (a,), (a, b), (1, 2, 3)]:
            assert value_to_row(row_to_value(row), len(row)) == row

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            value_to_row(a, 2)
        with pytest.raises(ValueError):
            value_to_row(tup(a, b), 3)
        with pytest.raises(ValueError):
            value_to_row(a, 0)


class TestConversions:
    def test_database_to_environment(self):
        db = Database().add("move", a, b).add("mark", a)
        env = database_to_environment(db)
        assert env["move"] == Relation.of(tup(a, b))
        assert env["mark"] == Relation.of(a)

    def test_environment_to_database(self):
        env = {"move": Relation.of(tup(a, b), name="move")}
        db = environment_to_database(env, {"move": 2})
        assert db.holds("move", a, b)

    def test_empty_relations_declared(self):
        env = {"move": Relation.empty("move")}
        db = environment_to_database(env, {"move": 2})
        assert "move" in db

    def test_rows_to_relation(self):
        relation = rows_to_relation(frozenset({(a, b)}), "R")
        assert relation.name == "R"
        assert tup(a, b) in relation

    def test_relation_rows(self):
        relation = Relation.of(tup(a, b), name="R")
        assert relation_rows(relation, 2) == {(a, b)}

    def test_full_round_trip(self):
        db = Database().add("p", a).add("q", a, b).add("q", b, a)
        env = database_to_environment(db)
        back = environment_to_database(env, {"p": 1, "q": 2})
        assert back.rows("p") == db.rows("p")
        assert back.rows("q") == db.rows("q")
