"""Unit tests for the algebra → deduction translation (Propositions 5.1, 5.4)."""

import pytest

from repro.core.algebra_to_datalog import (
    scalar_to_term,
    compile_test,
    translate_expression,
    translate_program,
    translation_registry,
)
from repro.core.expressions import (
    call,
    diff,
    ifp,
    map_,
    product,
    project,
    rel,
    select,
    setconst,
    union,
)
from repro.core.funcs import Apply, Arg, Comp, CompareTest, Lit, MkTup, NotTest
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import IfpThroughRecursion
from repro.core.encoding import environment_to_database
from repro.datalog import Database, run
from repro.datalog.ast import Const, FuncTerm, Var
from repro.datalog.safety import is_safe_program
from repro.relations import Atom, Relation, Tup, tup

a, b, c = Atom("a"), Atom("b"), Atom("c")
X = Var("X")


class TestScalarCompilation:
    def test_arg(self):
        assert scalar_to_term(Arg(), X) == X

    def test_component(self):
        assert scalar_to_term(Comp(Arg(), 2), X) == FuncTerm("comp2", (X,))

    def test_component_bound(self):
        with pytest.raises(ValueError):
            scalar_to_term(Comp(Arg(), 99), X)

    def test_mktup(self):
        term = scalar_to_term(MkTup((Arg(), Lit(1))), X)
        assert term == FuncTerm("tuple", (X, Const(1)))

    def test_apply(self):
        term = scalar_to_term(Apply("add2", (Arg(),)), X)
        assert term == FuncTerm("add2", (X,))

    def test_registry_has_components(self):
        registry = translation_registry()
        assert registry.get("comp1").apply((tup(a, b),)) == a
        assert registry.get("comp2").apply((tup(a, b),)) == b
        assert registry.get("comp1").apply((a,)) is None


class TestExpressionTranslation:
    def _value(self, expr, env, semantics="valid"):
        registry = translation_registry()
        translation = translate_expression(expr)
        database = environment_to_database(env, {})
        result = run(translation.program, database, semantics=semantics, registry=registry)
        return frozenset(row[0] for row in result.true_rows(translation.result_predicate))

    def test_union(self):
        env = {"A": Relation.of(a, name="A"), "B": Relation.of(b, name="B")}
        assert self._value(union(rel("A"), rel("B")), env) == {a, b}

    def test_diff(self):
        env = {"A": Relation.of(a, b, name="A"), "B": Relation.of(b, name="B")}
        assert self._value(diff(rel("A"), rel("B")), env) == {a}

    def test_product(self):
        env = {"A": Relation.of(a, name="A"), "B": Relation.of(b, name="B")}
        assert self._value(product(rel("A"), rel("B")), env) == {tup(a, b)}

    def test_select_with_negated_test(self):
        env = {"A": Relation.of(1, 2, 3, name="A")}
        expr = select(rel("A"), NotTest(CompareTest("<", Arg(), Lit(3))))
        assert self._value(expr, env) == {3}

    def test_map(self):
        env = {"A": Relation.of(1, 2, name="A")}
        expr = map_(rel("A"), Apply("add2", (Arg(),)))
        assert self._value(expr, env) == {3, 4}

    def test_setconst(self):
        assert self._value(setconst(a, 1), {}) == {a, 1}

    def test_safe_output(self):
        expr = project(diff(rel("A"), product(rel("B"), rel("C"))), 1)
        translation = translate_expression(expr)
        assert is_safe_program(translation.program)

    def test_ifp_inflationary(self):
        """Proposition 5.1: evaluate the translation inflationarily."""
        expr = ifp("x", diff(setconst(a), rel("x")))
        assert self._value(expr, {}, semantics="inflationary") == {a}

    def test_positive_ifp_all_semantics(self):
        move = Relation.of(tup(a, b), tup(b, c), name="MOVE")
        grow = map_(
            select(
                product(rel("MOVE"), rel("x")),
                CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
            ),
            MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
        )
        expr = ifp("x", union(rel("MOVE"), grow))
        env = {"MOVE": move}
        for semantics in ("inflationary", "wellfounded", "valid"):
            assert self._value(expr, env, semantics=semantics) == {
                tup(a, b),
                tup(b, c),
                tup(a, c),
            }


class TestProgramTranslation:
    def test_predicates_per_definition(self):
        program = AlgebraProgram.of(
            Definition("S", (), setconst(a)),
            Definition("T", (), union(call("S"), setconst(b))),
            dialect=Dialect.ALGEBRA_EQ,
        )
        translation = translate_program(program)
        assert set(translation.predicate_of) == {"S", "T"}

    def test_nonpositive_ifp_rejected(self):
        program = AlgebraProgram.of(
            Definition("Q", (), ifp("x", diff(setconst(a), rel("x")))),
            dialect=Dialect.IFP_ALGEBRA_EQ,
        )
        with pytest.raises(IfpThroughRecursion):
            translate_program(program)

    def test_ifp_through_recursion_rejected(self):
        program = AlgebraProgram.of(
            Definition("S", (), ifp("x", union(rel("x"), call("S")))),
            dialect=Dialect.IFP_ALGEBRA_EQ,
        )
        with pytest.raises(IfpThroughRecursion):
            translate_program(program)

    def test_translated_program_is_safe(self):
        from repro.corpus import ALGEBRA_CORPUS

        for case in ALGEBRA_CORPUS.values():
            translation = translate_program(case.program)
            assert is_safe_program(translation.program), case.name
