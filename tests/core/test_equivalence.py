"""Integration tests: the equivalence checkers over the corpus."""

import pytest

from repro.core.equivalence import (
    ThreeValuedAnswer,
    check_algebra_roundtrip,
    check_datalog_roundtrip,
    datalog_answers,
)
from repro.corpus import (
    ALGEBRA_CORPUS,
    DEDUCTIVE_CORPUS,
    chain,
    cycle,
    edges_to_database,
    edges_to_relation,
    random_graph,
)
from repro.relations import Atom, Relation


def _environment_for(case, edges):
    env = {
        "MOVE": edges_to_relation(edges, "MOVE"),
        "A": Relation.of(1, 2, 3, 4, 5, name="A"),
        "B": Relation.of(3, 4, 5, 6, name="B"),
    }
    return {
        name: value
        for name, value in env.items()
        if name in case.program.database_relations
    }


@pytest.mark.parametrize("name", sorted(DEDUCTIVE_CORPUS))
@pytest.mark.parametrize("edges_name", ["chain", "cycle", "random"])
def test_datalog_roundtrip_corpus(name, edges_name, registry):
    case = DEDUCTIVE_CORPUS[name]
    if case.uses_functions:
        database = edges_to_database([])
    else:
        edges = {
            "chain": chain(5),
            "cycle": cycle(4),
            "random": random_graph(5, 0.3, seed=11),
        }[edges_name]
        database = edges_to_database(edges)
    report = check_datalog_roundtrip(case.program, database, registry=registry)
    assert report.matches, report.mismatches()


@pytest.mark.parametrize("name", sorted(ALGEBRA_CORPUS))
@pytest.mark.parametrize("edges_name", ["chain", "cycle", "random"])
def test_algebra_roundtrip_corpus(name, edges_name, registry):
    case = ALGEBRA_CORPUS[name]
    edges = {
        "chain": chain(5),
        "cycle": cycle(4),
        "random": random_graph(5, 0.3, seed=13),
    }[edges_name]
    report = check_algebra_roundtrip(
        case.program, _environment_for(case, edges), registry=registry
    )
    assert report.matches, report.mismatches()


def test_three_valued_answer_equality():
    one = ThreeValuedAnswer(frozenset({1}), frozenset({2}))
    same = ThreeValuedAnswer(frozenset({1}), frozenset({2}))
    other = ThreeValuedAnswer(frozenset({1}), frozenset())
    assert one == same
    assert one != other


def test_report_lists_mismatches(registry):
    # Compare two different programs' answers by hand.
    case = DEDUCTIVE_CORPUS["win-move"]
    database = edges_to_database(chain(4))
    answers = datalog_answers(case.program, database, registry=registry)
    from repro.core.equivalence import _compare

    tweaked = dict(answers)
    tweaked["win"] = ThreeValuedAnswer(frozenset(), frozenset())
    report = _compare(answers, tweaked)
    assert not report.matches
    assert report.mismatches() == ["win"]


def test_wellfounded_route_agrees(registry):
    """The translated program may equally be run under the well-founded
    engine (the paper's Section 7 remark)."""
    from repro.core.equivalence import algebra_answers_native, algebra_answers_translated

    case = ALGEBRA_CORPUS["win-game"]
    env = _environment_for(case, cycle(3))
    native = algebra_answers_native(case.program, env, registry=registry)
    translated = algebra_answers_translated(
        case.program, env, registry=registry, semantics="wellfounded"
    )
    assert native == translated
