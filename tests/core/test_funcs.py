"""Unit tests for the MAP/σ function languages."""

import pytest

from repro.core.funcs import (
    AndTest,
    Apply,
    Arg,
    Comp,
    CompareTest,
    Lit,
    MkTup,
    NotTest,
    OrTest,
    TrueTest,
    component,
    eval_scalar,
    eval_test,
    pair,
)
from repro.relations import Atom, Tup, standard_registry, tup

a, b = Atom("a"), Atom("b")


class TestScalars:
    def test_arg_is_identity(self):
        assert eval_scalar(Arg(), a) == a

    def test_lit(self):
        assert eval_scalar(Lit(7), a) == 7

    def test_component(self):
        assert eval_scalar(component(2), tup(a, b)) == b

    def test_nested_components(self):
        member = tup(tup(1, 2), 3)
        assert eval_scalar(Comp(component(1), 2), member) == 2

    def test_component_off_tuple_is_undefined(self):
        assert eval_scalar(component(1), a) is None

    def test_component_out_of_range_is_undefined(self):
        assert eval_scalar(component(3), tup(a, b)) is None

    def test_component_index_validated(self):
        with pytest.raises(ValueError):
            Comp(Arg(), 0)

    def test_mktup(self):
        expr = MkTup((component(2), component(1)))
        assert eval_scalar(expr, tup(a, b)) == tup(b, a)

    def test_mktup_undefined_propagates(self):
        expr = MkTup((component(3), component(1)))
        assert eval_scalar(expr, tup(a, b)) is None

    def test_apply(self):
        registry = standard_registry()
        assert eval_scalar(Apply("add2", (Arg(),)), 5, registry) == 7

    def test_apply_partial(self):
        registry = standard_registry()
        assert eval_scalar(Apply("pred", (Arg(),)), 0, registry) is None

    def test_apply_needs_registry(self):
        with pytest.raises(KeyError):
            eval_scalar(Apply("add2", (Arg(),)), 5, None)

    def test_pair_helper(self):
        assert eval_scalar(pair(Arg(), Lit(1)), a) == tup(a, 1)

    def test_lit_must_be_value(self):
        with pytest.raises(TypeError):
            Lit(object())


class TestTests:
    def test_true_test(self):
        assert eval_test(TrueTest(), a)

    def test_equality(self):
        test = CompareTest("=", component(1), component(2))
        assert eval_test(test, tup(a, a))
        assert not eval_test(test, tup(a, b))

    def test_order(self):
        test = CompareTest("<", Arg(), Lit(5))
        assert eval_test(test, 3)
        assert not eval_test(test, 7)

    def test_order_incomparable_is_false(self):
        test = CompareTest("<", Arg(), Lit(5))
        assert not eval_test(test, a)

    def test_undefined_operand_is_false(self):
        test = CompareTest("=", component(1), Lit(1))
        assert not eval_test(test, 42)  # not a tuple

    def test_connectives(self):
        gt1 = CompareTest(">", Arg(), Lit(1))
        lt5 = CompareTest("<", Arg(), Lit(5))
        assert eval_test(AndTest(gt1, lt5), 3)
        assert not eval_test(AndTest(gt1, lt5), 7)
        assert eval_test(OrTest(gt1, lt5), 7)
        assert eval_test(NotTest(gt1), 0)

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            CompareTest("~", Arg(), Arg())
