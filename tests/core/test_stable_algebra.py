"""Unit tests: the Section 7 adjustment — algebra= under stable models."""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.stable_algebra import algebra_answers_stable, stable_set_models
from repro.corpus import ALGEBRA_CORPUS, chain, cycle, edges_to_relation, random_graph
from repro.core.valid_eval import valid_evaluate
from repro.datalog.semantics.stable import TooManyChoiceAtoms
from repro.lang import parse_algebra_program
from repro.core.programs import Dialect
from repro.relations import Atom, Relation


@pytest.fixture(scope="module")
def registry():
    return translation_registry()


WIN = ALGEBRA_CORPUS["win-game"].program


class TestNativeStableModels:
    def test_even_cycle_two_models(self, registry):
        env = {"MOVE": edges_to_relation(cycle(4), "MOVE")}
        models = stable_set_models(WIN, env, registry=registry)
        assert len(models) == 2
        wins = sorted(sorted(v.name for v in m.members["WIN"]) for m in models)
        assert wins == [["n0", "n2"], ["n1", "n3"]]

    def test_odd_cycle_no_models(self, registry):
        env = {"MOVE": edges_to_relation(cycle(3), "MOVE")}
        assert stable_set_models(WIN, env, registry=registry) == []

    def test_total_valid_model_is_unique_stable(self, registry):
        env = {"MOVE": edges_to_relation(chain(6), "MOVE")}
        models = stable_set_models(WIN, env, registry=registry)
        valid = valid_evaluate(WIN, env, registry=registry)
        assert len(models) == 1
        assert models[0].members["WIN"] == valid.true["WIN"]

    def test_valid_truths_hold_in_every_model(self, registry):
        env = {"MOVE": edges_to_relation(random_graph(6, 0.35, seed=31), "MOVE")}
        valid = valid_evaluate(WIN, env, registry=registry)
        for model in stable_set_models(WIN, env, registry=registry):
            assert valid.true["WIN"] <= model.members["WIN"]
            false_members = (
                valid.candidates["WIN"] - valid.true["WIN"] - valid.undefined["WIN"]
            )
            assert not (false_members & model.members["WIN"])

    def test_paradox_has_no_stable_model(self, registry):
        program = parse_algebra_program(
            "relations A;\nS = A - S;", dialect=Dialect.ALGEBRA_EQ
        )
        env = {"A": Relation.of(Atom("a"), name="A")}
        assert stable_set_models(program, env, registry=registry) == []

    def test_choice_budget(self, registry):
        env = {"MOVE": edges_to_relation(cycle(8), "MOVE")}
        with pytest.raises(TooManyChoiceAtoms):
            stable_set_models(WIN, env, registry=registry, max_choice_memberships=4)


class TestTranslatedRoute:
    @pytest.mark.parametrize(
        "edges_factory",
        [lambda: chain(5), lambda: cycle(4), lambda: cycle(3),
         lambda: random_graph(5, 0.3, seed=33)],
    )
    def test_agrees_with_native(self, registry, edges_factory):
        env = {"MOVE": edges_to_relation(edges_factory(), "MOVE")}
        native = stable_set_models(WIN, env, registry=registry)
        translated = algebra_answers_stable(WIN, env, registry=registry)
        assert translated.models == len(native)
        if native:
            native_sets = {frozenset(m.members["WIN"]) for m in native}
            assert frozenset.intersection(*native_sets) == translated.cautious["WIN"]
            assert frozenset.union(*native_sets) == translated.brave["WIN"]

    def test_cautious_brave_shape(self, registry):
        env = {"MOVE": edges_to_relation(cycle(4), "MOVE")}
        answers = algebra_answers_stable(WIN, env, registry=registry)
        assert answers.models == 2
        assert answers.cautious["WIN"] == frozenset()
        assert len(answers.brave["WIN"]) == 4

    def test_empty_when_no_models(self, registry):
        env = {"MOVE": edges_to_relation(cycle(3), "MOVE")}
        answers = algebra_answers_stable(WIN, env, registry=registry)
        assert answers.models == 0
        assert answers.cautious["WIN"] == frozenset()
