"""E4 — Theorem 3.1: IFP-algebra queries are well-defined.

Workload: the seeded random IFP-algebra expression family from the test
suite, evaluated as one-definition programs under the valid semantics.
Claim: every membership is decided (the valid interpretation is total) —
the "local stratification" guarantee of Theorem 3.1.
"""

import random

import pytest

from repro.core import AlgebraProgram, Definition, Dialect, valid_evaluate
from repro.relations import Relation, standard_registry

from support import ExperimentTable

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests" / "paper"))
from test_theorem_3_1_and_prop_3_2 import BASE_ENV, random_expression  # noqa: E402

table = ExperimentTable(
    "E04-wellformed-ifp",
    "Every IFP-algebra query has a total valid interpretation (Theorem 3.1)",
    ["batch", "expressions", "total", "undefined-memberships"],
)

REGISTRY = standard_registry()


def _run_batch(seed_base: int, count: int):
    total = 0
    undefined = 0
    for offset in range(count):
        rng = random.Random(seed_base * 1000 + offset)
        expr = random_expression(rng, 3)
        program = AlgebraProgram.of(
            Definition("Q", (), expr),
            database_relations=sorted(BASE_ENV),
            dialect=Dialect.IFP_ALGEBRA_EQ,
        )
        result = valid_evaluate(program, BASE_ENV, registry=REGISTRY)
        if result.is_well_defined():
            total += 1
        undefined += sum(len(v) for v in result.undefined.values())
    return total, undefined


@pytest.mark.parametrize("batch", [1, 2, 3])
def test_random_ifp_algebra_total(benchmark, batch):
    count = 25
    total, undefined = benchmark.pedantic(
        _run_batch, args=(batch, count), rounds=1, iterations=1
    )
    table.add(batch, count, total, undefined)
    assert total == count
    assert undefined == 0
