"""E5 — §3.2: programs without initial valid models.

Workloads: ``S = {a} − S`` (always undefined), and the WIN game on move
graphs sweeping from fully acyclic to fully cyclic.  Rows record the
undefined-membership counts: 0 exactly on the acyclic side, growing with
cycle structure — the paper's acyclicity criterion made quantitative.
"""

import pytest

from repro.core import Dialect, valid_evaluate
from repro.corpus import chain, cycle, edges_to_relation, random_graph
from repro.lang import parse_algebra_program

from support import ExperimentTable

table = ExperimentTable(
    "E05-undefined",
    "S={a}−S and cyclic WIN games leave memberships undefined (§3.2)",
    ["program", "graph", "positions", "true", "undefined", "well-defined"],
)

PARADOX = parse_algebra_program(
    "relations A;\nS = A - S;", dialect=Dialect.ALGEBRA_EQ
)
WIN = parse_algebra_program(
    "relations MOVE;\nWIN = pi1(MOVE - (pi1(MOVE) * WIN));",
    dialect=Dialect.ALGEBRA_EQ,
)


def test_paradox(benchmark):
    from repro.relations import Atom, Relation

    env = {"A": Relation.of(Atom("a"), Atom("b"), Atom("c"), name="A")}
    result = benchmark.pedantic(
        valid_evaluate, args=(PARADOX, env), rounds=1, iterations=1
    )
    table.add("S=A−S", "3 atoms", 3, len(result.true["S"]),
              len(result.undefined["S"]), result.is_well_defined())
    assert len(result.undefined["S"]) == 3


GRAPHS = {
    "chain-16": chain(16),
    "cycle-8": cycle(8),
    "cycle-9": cycle(9),
    "random-sparse": random_graph(12, 0.1, seed=5),
    "random-dense": random_graph(12, 0.35, seed=5),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_win_games(benchmark, graph_name):
    edges = GRAPHS[graph_name]
    env = {"MOVE": edges_to_relation(edges, "MOVE")}
    result = benchmark.pedantic(
        valid_evaluate, args=(WIN, env), rounds=1, iterations=1
    )
    positions = len(result.candidates["WIN"])
    table.add(
        "WIN",
        graph_name,
        positions,
        len(result.true["WIN"]),
        len(result.undefined["WIN"]),
        result.is_well_defined(),
    )
    if graph_name == "chain-16":
        assert result.is_well_defined()
    if graph_name.startswith("cycle"):
        assert not result.is_well_defined()
