"""E12 — Theorem 6.2: the languages are equivalent (round trips).

Workload: double round trips — deduction → algebra= → deduction — over
corpus programs, confirming answers (including undefined sets) survive
*composed* translation.  Rows record the program growth through the two
hops, quantifying the translation blowup the theorem tolerates.
"""

import pytest

from repro.core.algebra_to_datalog import translate_program, translation_registry
from repro.core.datalog_to_algebra import datalog_to_algebra
from repro.core.encoding import database_to_environment, environment_to_database
from repro.core.equivalence import datalog_answers
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, random_graph
from repro.datalog import run
from repro.relations import Relation

from support import ExperimentTable

table = ExperimentTable(
    "E12-roundtrip",
    "deduction → algebra= → deduction preserves all answers (Thm 6.2)",
    ["program", "graph", "rules-in", "rules-out", "agree"],
)

REGISTRY = translation_registry()

CASES = [
    ("transitive-closure", "chain-6", chain(6)),
    ("win-move", "cycle-5", cycle(5)),
    ("win-move", "random-6", random_graph(6, 0.3, seed=12)),
    ("choice", "none", []),
    ("unreachable", "chain-5", chain(5)),
    ("double-negation", "random-5", random_graph(5, 0.3, seed=12)),
]


@pytest.mark.parametrize(
    "case_name,graph_name,edges", CASES, ids=[f"{c}-{g}" for c, g, _e in CASES]
)
def test_double_roundtrip(benchmark, case_name, graph_name, edges):
    case = DEDUCTIVE_CORPUS[case_name]
    database = edges_to_database(edges)
    direct = datalog_answers(case.program, database, registry=REGISTRY)

    to_algebra = datalog_to_algebra(case.program)
    back = translate_program(to_algebra.program)
    env = database_to_environment(database)
    for name in to_algebra.program.database_relations:
        env.setdefault(name, Relation([], name=name))
    database_back = environment_to_database(env, {})

    def final_leg():
        return run(back.program, database_back, semantics="valid", registry=REGISTRY)

    outcome = benchmark.pedantic(final_leg, rounds=1, iterations=1)
    agree = True
    for predicate in case.predicates:
        mapped = back.predicate_of[predicate]
        agree &= {r[0] for r in outcome.true_rows(mapped)} == direct[predicate].true
        agree &= (
            {r[0] for r in outcome.undefined_rows(mapped)}
            == direct[predicate].undefined
        )
    table.add(case_name, graph_name, len(case.program), len(back.program), agree)
    assert agree
