"""E1 — §2.1: the SET(nat) specification behaves as finite sets.

Workload: random finite sets of numerals; MEM queries answered by term
rewriting over the paper's equations must agree with Python-set truth.
The benchmark times MEM evaluation as the set size grows.
"""

import random

import pytest

from repro.specs import RewriteSystem
from repro.specs.builtins import FALSE, TRUE, mem, nat_term, set_of_nat_spec, set_term

from support import ExperimentTable

table = ExperimentTable(
    "E01-set-spec",
    "SET(nat) equations compute membership of finite sets (Section 2.1)",
    ["set-size", "queries", "agree-with-python-sets", "mem-terms-rewritten"],
)

REWRITER = RewriteSystem(set_of_nat_spec().equations)


def _mem_queries(size: int, seed: int):
    rng = random.Random(seed)
    members = sorted(rng.sample(range(size * 3), size))
    collection = set_term(*(nat_term(m) for m in members))
    queries = []
    for value in range(size * 3):
        queries.append((value, value in members, mem(nat_term(value), collection)))
    return queries


def _run(size: int, seed: int) -> int:
    queries = _mem_queries(size, seed)
    agree = 0
    for _value, expected, query in queries:
        answer = REWRITER.normalize(query, max_steps=200_000)
        if answer == (TRUE if expected else FALSE):
            agree += 1
    return agree, len(queries)


@pytest.mark.parametrize("size", [2, 4, 8])
def test_mem_by_rewriting(benchmark, size):
    agree, total = benchmark.pedantic(_run, args=(size, size), rounds=1, iterations=1)
    table.add(size, total, f"{agree}/{total}", total)
    assert agree == total
