"""E7 — Example 4: the naive translation under the two semantics.

``Q = IFP_{{a}−x}`` translates to the non-stratified program
``{R(a); R(x) ∧ ¬Q(x) → Q(x)}``.  Rows record, per non-positive IFP
query of a generated family, the three answers: direct algebra value,
translation under inflationary semantics (must match), translation under
valid semantics (must leave the contested members undefined).
"""

import pytest

from repro.core import diff, evaluate, ifp, rel, setconst, union
from repro.core.algebra_to_datalog import translate_expression, translation_registry
from repro.core.encoding import environment_to_database
from repro.datalog import Database, run
from repro.relations import Atom, Relation

from support import ExperimentTable

table = ExperimentTable(
    "E07-inflationary-vs-valid",
    "Naive IFP translation: inflationary = algebra, valid leaves undefined (Ex. 4)",
    ["query", "algebra-members", "inflationary-members", "valid-true", "valid-undefined"],
)

REGISTRY = translation_registry()
a, b, c = Atom("a"), Atom("b"), Atom("c")

QUERIES = {
    "paper-example4": (ifp("x", diff(setconst(a), rel("x"))), {}),
    "two-constants": (ifp("x", diff(setconst(a, b), rel("x"))), {}),
    "with-relation": (
        ifp("x", diff(union(setconst(a), rel("B")), rel("x"))),
        {"B": Relation.of(b, c, name="B")},
    ),
}


@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_nonpositive_ifp(benchmark, query_name):
    query, env = QUERIES[query_name]
    translation = translate_expression(query)
    database = environment_to_database(env, {})

    def all_routes():
        direct = evaluate(query, env, registry=REGISTRY)
        inflat = run(
            translation.program, database, semantics="inflationary", registry=REGISTRY
        )
        valid = run(
            translation.program, database, semantics="valid", registry=REGISTRY
        )
        return direct, inflat, valid

    direct, inflat, valid = benchmark.pedantic(all_routes, rounds=1, iterations=1)
    predicate = translation.result_predicate
    inflat_members = {r[0] for r in inflat.true_rows(predicate)}
    valid_true = {r[0] for r in valid.true_rows(predicate)}
    valid_undef = {r[0] for r in valid.undefined_rows(predicate)}
    table.add(
        query_name,
        len(direct),
        len(inflat_members),
        len(valid_true),
        len(valid_undef),
    )
    # Prop 5.1: inflationary matches the algebra exactly.
    assert inflat_members == set(direct.items)
    # Example 4: the valid reading must NOT (the contested members are
    # undefined, true side strictly smaller).
    assert valid_true < inflat_members or valid_undef
