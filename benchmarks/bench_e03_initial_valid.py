"""E3 — Example 2 / Proposition 2.3(2): deciding initial-valid-model
existence for constant-only specifications.

Workload: Example 2 itself, plus a seeded family of random constant-only
specifications (3–6 constants, mixed =/≠ premises).  Rows record the
model counts and the decision; Example 2 must come out "no initial valid
model" with exactly the paper's three valid algebras.
"""

import random

import pytest

from repro.specs import Operation, Specification, analyze_constant_spec, equation, sapp
from repro.specs.builtins import example2_spec
from repro.specs.equations import EqPremise, NeqPremise

from support import ExperimentTable

table = ExperimentTable(
    "E03-initial-valid",
    "Example 2 has 3 valid models, none initial; constant-only case decidable (Prop 2.3(2))",
    ["spec", "constants", "models", "valid", "initial-exists"],
)


def test_example2(benchmark):
    analysis = benchmark.pedantic(
        analyze_constant_spec, args=(example2_spec(),), rounds=1, iterations=1
    )
    table.add("example2", 3, len(analysis.model_partitions),
              len(analysis.valid_partitions), analysis.has_initial_valid_model())
    assert len(analysis.valid_partitions) == 3
    assert not analysis.has_initial_valid_model()


def _random_spec(constants: int, n_equations: int, seed: int) -> Specification:
    rng = random.Random(seed)
    names = [chr(ord("a") + i) for i in range(constants)]
    equations = []
    for _ in range(n_equations):
        left, right = rng.sample(names, 2)
        premises = []
        if rng.random() < 0.7:
            p_left, p_right = rng.sample(names, 2)
            premise_type = NeqPremise if rng.random() < 0.6 else EqPremise
            premises.append(premise_type(sapp(p_left), sapp(p_right)))
        equations.append(equation(sapp(left), sapp(right), *premises))
    return Specification.build(
        f"random-{seed}",
        ["s"],
        [Operation(name, (), "s") for name in names],
        equations,
    )


@pytest.mark.parametrize("constants,seed", [(3, 1), (4, 2), (5, 3), (6, 4)])
def test_random_constant_specs(benchmark, constants, seed):
    spec = _random_spec(constants, constants, seed)

    def decide():
        return analyze_constant_spec(spec)

    analysis = benchmark.pedantic(decide, rounds=1, iterations=1)
    table.add(
        spec.name,
        constants,
        len(analysis.model_partitions),
        len(analysis.valid_partitions),
        analysis.has_initial_valid_model(),
    )
    # Soundness: an initial model, when found, refines every valid model.
    if analysis.initial is not None:
        from repro.specs import refines

        assert all(refines(analysis.initial, p) for p in analysis.valid_partitions)
    # And every certainly-equal pair holds in every valid model.
    assert analysis.valid_partitions or analysis.model_partitions is not None
