"""E8 — Proposition 5.1: IFP-algebra → deduction (inflationary target).

Workload: positive IFP queries (transitive closure) on graphs of growing
size.  Rows compare the direct algebra evaluation against the translated
program under the inflationary engine and record both sizes — the
translation is equivalence-preserving at every scale.
"""

import pytest

from repro.core import evaluate, ifp, map_, product, rel, select, union
from repro.core.algebra_to_datalog import translate_expression, translation_registry
from repro.core.encoding import environment_to_database
from repro.core.funcs import Arg, Comp, CompareTest, MkTup
from repro.corpus import chain, cycle, edges_to_relation, random_graph
from repro.datalog import run

from support import ExperimentTable

table = ExperimentTable(
    "E08-algebra-to-datalog",
    "IFP-algebra queries translate to inflationary deduction (Prop 5.1)",
    ["graph", "nodes~", "tc-size", "translated-rules", "agree"],
)

REGISTRY = translation_registry()


def tc_query():
    grow = map_(
        select(
            product(rel("MOVE"), rel("x")),
            CompareTest("=", Comp(Comp(Arg(), 1), 2), Comp(Comp(Arg(), 2), 1)),
        ),
        MkTup((Comp(Comp(Arg(), 1), 1), Comp(Comp(Arg(), 2), 2))),
    )
    return ifp("x", union(rel("MOVE"), grow))


GRAPHS = {
    "chain-8": (chain(8), 8),
    "chain-16": (chain(16), 16),
    "cycle-8": (cycle(8), 8),
    "cycle-12": (cycle(12), 12),
    "random-10": (random_graph(10, 0.15, seed=8), 10),
    "random-14": (random_graph(14, 0.12, seed=8), 14),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_tc_translation(benchmark, graph_name):
    edges, nodes = GRAPHS[graph_name]
    query = tc_query()
    env = {"MOVE": edges_to_relation(edges, "MOVE")}
    translation = translate_expression(query)
    database = environment_to_database(env, {})

    def translated_route():
        return run(
            translation.program, database, semantics="inflationary", registry=REGISTRY
        )

    outcome = benchmark.pedantic(translated_route, rounds=1, iterations=1)
    direct = evaluate(query, env, registry=REGISTRY)
    rows = {r[0] for r in outcome.true_rows(translation.result_predicate)}
    agree = rows == set(direct.items)
    table.add(graph_name, nodes, len(direct), len(translation.program), agree)
    assert agree
