"""E11 — Proposition 6.1: safe deduction → algebra=.

Workload: the deductive corpus (recursion, stratified and non-stratified
negation, built-ins, function symbols) on three graph families.  Rows
record the simulation-equation sizes and three-valued agreement between
direct deduction and the algebra= evaluation of the translation.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.datalog_to_algebra import datalog_to_algebra
from repro.core.equivalence import check_datalog_roundtrip
from repro.core.expressions import walk
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, random_graph
from repro.datalog import Database

from support import ExperimentTable

table = ExperimentTable(
    "E11-datalog-to-algebra",
    "Every safe deductive program has an equivalent algebra= program (Prop 6.1)",
    ["program", "graph", "rules", "expr-nodes", "agree"],
)

REGISTRY = translation_registry()

GRAPHS = {
    "chain-6": chain(6),
    "cycle-5": cycle(5),
    "random-6": random_graph(6, 0.3, seed=11),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("case_name", sorted(DEDUCTIVE_CORPUS))
def test_simulation_functions(benchmark, case_name, graph_name):
    case = DEDUCTIVE_CORPUS[case_name]
    database = (
        Database() if case.uses_functions else edges_to_database(GRAPHS[graph_name])
    )

    def roundtrip():
        return check_datalog_roundtrip(case.program, database, registry=REGISTRY)

    report = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    translation = datalog_to_algebra(case.program)
    expr_nodes = sum(
        len(list(walk(d.body))) for d in translation.program.definitions
    )
    table.add(case_name, graph_name, len(case.program), expr_nodes, report.matches)
    assert report.matches, report.mismatches()
