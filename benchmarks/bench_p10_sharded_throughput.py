"""P10 — multi-process sharding vs the single-process serving tier.

The cluster tentpole exists because the GIL caps a single
``QueryService`` process: past one saturated core, more writer threads
only queue.  N worker processes behind the consistent-hash router can
apply updates to views on different shards truly in parallel — write
throughput should scale with cores, which the GIL forbids in-process.

Two measurements:

* **write throughput**: the identical multi-view pipelined insert load
  pushed through a 1-shard cluster and an N-shard cluster (same
  router, same framing — the only variable is how many worker
  processes share the work).  The issue's bar is >=2x at 4 shards on
  4 cores; the bar below scales honestly with the cores this machine
  actually has (``len(os.sched_getaffinity(0))``), because worker
  processes pinned to one core cannot beat physics: on a single-core
  box the N-shard run only has to stay within sanity range (0.4x) of
  the 1-shard run, i.e. sharding must not *collapse* throughput.

* **router-hop read latency**: the same ``query`` measured against a
  worker's line-protocol socket directly and through the router's
  framed front door.  The router adds one unix-socket round trip plus
  framing; the bar is a loose sanity cap, not a target.
"""

import os
import statistics
import threading
import time

from repro.service.cluster import ClusterClient, cluster

from support import ExperimentTable

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

CORES = len(os.sched_getaffinity(0))
SHARDS = 2 if SMOKE else 4
WRITERS = 4
DURATION = 2.0 if SMOKE else 6.0
BATCH = 20
LATENCY_SAMPLES = 100 if SMOKE else 300

#: The issue's bar (2x at 4 shards) presumes >=4 cores.  Scale it to
#: the hardware: with fewer cores true parallel speedup is impossible,
#: so the bar degrades to "sharding does not collapse throughput".
if CORES >= 4:
    SPEEDUP_BAR = 2.0
elif CORES >= 2:
    SPEEDUP_BAR = 1.2
else:
    SPEEDUP_BAR = 0.4

#: Router adds a second unix-socket round trip per query; anything
#: beyond this multiple (or 10ms absolute) means the front door itself
#: became the bottleneck.
LATENCY_OVERHEAD_CAP = 8.0
LATENCY_ABSOLUTE_CAP_S = 0.010

TC = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- edge(X, Y), tc(Y, Z)."

table = ExperimentTable(
    "P10-sharded-throughput",
    f"{SHARDS}-shard writes >= {SPEEDUP_BAR}x 1-shard on {CORES} core(s); "
    "router hop adds bounded read latency",
    [
        "scenario",
        "shards",
        "cores",
        "writers",
        "acked-ops",
        "elapsed-s",
        "ops-per-sec",
        "factor",
    ],
)


def _write_load(socket_path):
    """(acked_ops, elapsed) for the standard pipelined insert load."""
    views = [f"w{index}" for index in range(WRITERS)]
    with ClusterClient(socket_path, timeout=120.0) as setup:
        for view in views:
            setup.register(view, TC)
    counts = [0] * WRITERS
    stop = threading.Event()

    def writer(slot):
        view = views[slot]
        with ClusterClient(socket_path, timeout=120.0) as mine:
            tick = 0
            while not stop.is_set():
                lines = [
                    f"+{view} edge(n{tick + i}, n{tick + i + 1})"
                    for i in range(BATCH)
                ]
                tick += BATCH
                replies = mine.pipeline(lines)
                counts[slot] += sum(
                    1 for reply in replies if reply[-1].startswith("ok")
                )

    threads = [
        threading.Thread(target=writer, args=(slot,))
        for slot in range(WRITERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(DURATION)
    stop.set()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not any(thread.is_alive() for thread in threads)
    # The acked writes actually landed: each view's chain closed over
    # at least the first batch.
    with ClusterClient(socket_path, timeout=120.0) as check:
        for slot, view in enumerate(views):
            if counts[slot]:
                rows, _ = check.query(view, "edge")
                assert len(rows) >= min(counts[slot], BATCH)
    return sum(counts), elapsed


def _scenario(shards, tmp_base):
    os.makedirs(tmp_base, exist_ok=True)
    socket_path = f"{tmp_base}/fd{shards}"
    with cluster(socket_path, shards=shards):
        return _write_load(socket_path)


def _read_latencies(tmp_base):
    """(direct_mean_s, routed_mean_s) for one warm query."""
    import socket as socket_module

    socket_path = f"{tmp_base}/lat"
    with cluster(socket_path, shards=1) as router:
        with ClusterClient(socket_path, timeout=120.0) as client:
            client.register("lat_tc", TC)
            for index in range(8):
                client.insert("lat_tc", f"edge(m{index}, m{index + 1})")
            client.query("lat_tc", "tc")  # warm both paths

            # Direct: line protocol straight to the worker's socket.
            worker_socket = router._workers["shard-0"].socket_path
            raw = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            raw.settimeout(120.0)
            raw.connect(worker_socket)
            reader = raw.makefile("r")

            def direct_query():
                raw.sendall(b"query lat_tc tc\n")
                while True:
                    line = reader.readline().strip()
                    if line.startswith("ok") or line.startswith("error"):
                        return

            def routed_query():
                client.query("lat_tc", "tc")

            direct_query()
            direct = []
            for _ in range(LATENCY_SAMPLES):
                tick = time.perf_counter()
                direct_query()
                direct.append(time.perf_counter() - tick)
            routed = []
            for _ in range(LATENCY_SAMPLES):
                tick = time.perf_counter()
                routed_query()
                routed.append(time.perf_counter() - tick)
            raw.close()
    return statistics.mean(direct), statistics.mean(routed)


def test_sharded_write_throughput(benchmark, tmp_path):
    base = str(tmp_path)
    # Warm both topologies once (cold spawn pays interpreter start-up).
    _scenario(1, base + "/warm1")
    _scenario(SHARDS, base + f"/warm{SHARDS}")

    single_ops, single_elapsed = _scenario(1, base + "/run1")
    sharded_ops, sharded_elapsed = benchmark.pedantic(
        lambda: _scenario(SHARDS, base + f"/run{SHARDS}"),
        rounds=1,
        iterations=1,
    )
    single_rate = single_ops / max(single_elapsed, 1e-9)
    sharded_rate = sharded_ops / max(sharded_elapsed, 1e-9)
    speedup = sharded_rate / max(single_rate, 1e-9)

    table.add(
        "writes-1-shard", 1, CORES, WRITERS, single_ops,
        f"{single_elapsed:.2f}", f"{single_rate:.0f}", "1.0x",
    )
    table.add(
        f"writes-{SHARDS}-shard", SHARDS, CORES, WRITERS, sharded_ops,
        f"{sharded_elapsed:.2f}", f"{sharded_rate:.0f}",
        f"{speedup:.2f}x",
    )
    assert speedup >= SPEEDUP_BAR, (
        f"{SHARDS}-shard throughput only reached {speedup:.2f}x the "
        f"1-shard rate ({sharded_rate:.0f} vs {single_rate:.0f} "
        f"acked ops/sec) on {CORES} core(s); bar {SPEEDUP_BAR}x"
    )


def test_router_hop_read_latency(benchmark, tmp_path):
    direct_mean, routed_mean = benchmark.pedantic(
        lambda: _read_latencies(str(tmp_path)), rounds=1, iterations=1
    )
    overhead = routed_mean / max(direct_mean, 1e-9)
    table.add(
        "read-direct-worker", 1, CORES, 1, LATENCY_SAMPLES,
        f"{direct_mean * 1e6:.0f}us", "-", "1.0x",
    )
    table.add(
        "read-via-router", 1, CORES, 1, LATENCY_SAMPLES,
        f"{routed_mean * 1e6:.0f}us", "-", f"{overhead:.2f}x",
    )
    assert routed_mean < LATENCY_ABSOLUTE_CAP_S, (
        f"routed query mean {routed_mean * 1e3:.2f}ms exceeds "
        f"{LATENCY_ABSOLUTE_CAP_S * 1e3:.0f}ms"
    )
    assert overhead < LATENCY_OVERHEAD_CAP, (
        f"router hop costs {overhead:.1f}x the direct worker query "
        f"(cap {LATENCY_OVERHEAD_CAP}x)"
    )
