"""P7 — per-view lock sharding vs the single-lock baseline.

The service tentpole shards the big service lock per view.  Under the
GIL that cannot speed up CPU-bound work that is already saturating one
core — what it eliminates is **head-of-line blocking**: with one global
lock, a cheap update on a small view must wait for whatever heavy
maintenance happens to hold the lock on a *different* view; with
per-view locks it only contends on the GIL's few-millisecond slices.

The workload makes that concrete: one thread applies expensive updates
(shortcut-edge insert/delete on a deep transitive closure, the DRed
path) to a *heavy* view while four threads apply cheap pair updates to
four independent *light* views.  We run the identical scenario under
``lock_mode="global"`` (the old one-big-lock service) and
``lock_mode="view"`` (the sharded default) and compare light-update
throughput.  The claim: sharding buys at least 2x on 4+ views.
"""

import os
import threading
import time

import pytest

from repro.corpus import edges_to_database
from repro.relations import Atom
from repro.service import QueryService

from support import ExperimentTable

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

table = ExperimentTable(
    "P07-concurrent-throughput",
    "per-view locks beat the global lock >=2x on multi-view updates",
    [
        "light-views",
        "heavy-ops",
        "global-light-ops",
        "view-light-ops",
        "global-ops-per-sec",
        "view-ops-per-sec",
        "speedup",
    ],
)

TC = """
tc(X, Y) :- move(X, Y).
tc(X, Z) :- move(X, Y), tc(Y, Z).
"""

LIGHT_VIEWS = 4
HEAVY_OPS = 2 if SMOKE else 4
HEAVY_CHAIN = (
    120 if SMOKE else 220
)  # deep closure: one shortcut delta costs tens of ms
#: The speedup bar — relaxed at smoke scale, where the heavy batches
#: are short enough that head-of-line blocking shrinks.
SPEEDUP_BAR = 1.5 if SMOKE else 2.0


def _chain(length, prefix):
    nodes = [Atom(f"{prefix}{i}") for i in range(length + 1)]
    return list(zip(nodes, nodes[1:]))


def _build_service(lock_mode):
    service = QueryService(lock_mode=lock_mode)
    service.register(
        "heavy", TC, database=edges_to_database(_chain(HEAVY_CHAIN, "h"))
    )
    for index in range(LIGHT_VIEWS):
        service.register(
            f"light{index}",
            TC,
            database=edges_to_database(_chain(3, f"l{index}n")),
        )
    return service


def _run_scenario(lock_mode):
    """(light_ops, elapsed_seconds) for one lock discipline."""
    service = _build_service(lock_mode)
    source, target = Atom("h10"), Atom(f"h{HEAVY_CHAIN - 10}")
    stop = threading.Event()
    light_counts = [0] * LIGHT_VIEWS

    def heavy_worker():
        try:
            for _ in range(HEAVY_OPS):
                service.insert("heavy", "move", source, target)
                service.delete("heavy", "move", source, target)
        finally:
            stop.set()

    def light_worker(index):
        name = f"light{index}"
        tick = 0
        while not stop.is_set():
            token = Atom(f"t{index}_{tick % 8}")
            service.insert(name, "move", token, Atom(f"l{index}n0"))
            service.delete(name, "move", token, Atom(f"l{index}n0"))
            light_counts[index] += 1
            tick += 1

    threads = [threading.Thread(target=heavy_worker)] + [
        threading.Thread(target=light_worker, args=(index,))
        for index in range(LIGHT_VIEWS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not any(thread.is_alive() for thread in threads)
    # The light views were maintained correctly throughout.
    for index in range(LIGHT_VIEWS):
        rows = service.query(f"light{index}", "tc")
        assert (Atom(f"l{index}n0"), Atom(f"l{index}n3")) in rows
    return sum(light_counts), elapsed


def test_sharded_locks_beat_global_lock(benchmark):
    # Warm both code paths once so neither scenario pays first-run costs.
    _run_scenario("global")
    _run_scenario("view")

    global_ops, global_elapsed = _run_scenario("global")
    view_ops, view_elapsed = benchmark.pedantic(
        lambda: _run_scenario("view"), rounds=1, iterations=1
    )
    global_rate = global_ops / max(global_elapsed, 1e-9)
    view_rate = view_ops / max(view_elapsed, 1e-9)
    speedup = view_rate / max(global_rate, 1e-9)

    table.add(
        LIGHT_VIEWS,
        HEAVY_OPS,
        global_ops,
        view_ops,
        f"{global_rate:.0f}",
        f"{view_rate:.0f}",
        f"{speedup:.1f}x",
    )
    # The acceptance bar: sharding must at least double multi-view
    # update throughput against the single-lock baseline on 4+ views
    # (relaxed at smoke scale).
    assert speedup >= SPEEDUP_BAR, (
        f"per-view locking only reached {speedup:.2f}x the global-lock "
        f"throughput ({view_rate:.0f} vs {global_rate:.0f} light ops/sec)"
    )
