"""P5 — performance/ablation: direct semi-naive vs ground-then-solve.

Stratified programs can skip grounding entirely; this compares the
direct tuple-at-a-time evaluator against the grounding pipeline on TC
and stratified-negation workloads as the graph grows.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.corpus import DEDUCTIVE_CORPUS, chain, complete, edges_to_database, random_graph
from repro.datalog import run
from repro.datalog.seminaive import seminaive_stratified

from support import ExperimentTable, timed

table = ExperimentTable(
    "P05-direct-vs-ground",
    "direct semi-naive vs ground-then-solve on stratified programs (ablation)",
    ["program", "graph", "direct-sec", "ground-sec", "agree"],
)

REGISTRY = translation_registry()

CASES = [
    ("transitive-closure", "chain-32", chain(32)),
    ("transitive-closure", "chain-64", chain(64)),
    ("transitive-closure", "complete-10", complete(10)),
    ("unreachable", "chain-16", chain(16)),
    ("same-generation", "random-12", random_graph(12, 0.15, seed=71)),
]


@pytest.mark.parametrize(
    "case_name,graph_name,edges", CASES, ids=[f"{c}-{g}" for c, g, _e in CASES]
)
def test_direct_vs_ground(benchmark, case_name, graph_name, edges):
    case = DEDUCTIVE_CORPUS[case_name]
    database = edges_to_database(edges)

    direct = benchmark.pedantic(
        seminaive_stratified,
        args=(case.program, database),
        kwargs={"registry": REGISTRY},
        rounds=1,
        iterations=1,
    )
    direct_sec = benchmark.stats.stats.mean
    grounded, ground_sec = timed(
        run, case.program, database, semantics="stratified", registry=REGISTRY
    )
    agree = all(
        direct.get(predicate, frozenset()) == grounded.true_rows(predicate)
        for predicate in case.predicates
    )
    table.add(case_name, graph_name, f"{direct_sec:.4f}", f"{ground_sec:.4f}", agree)
    assert agree
