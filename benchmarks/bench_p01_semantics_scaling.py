"""P1 — performance: the semantics engines across workloads and scales.

Times grounding + solving for each engine on TC and WIN workloads over
chains, cycles and random graphs (n = 8 … 64).  The headline shapes:
stratified/WFS/valid cost the same order on these workloads (valid *is*
an alternating fixpoint), inflationary is round-bound, and everything is
polynomial in the ground-program size.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, random_graph
from repro.datalog import run

from support import ExperimentTable

table = ExperimentTable(
    "P01-semantics-scaling",
    "engine wall-clock across workloads (performance)",
    ["workload", "graph", "semantics", "true-atoms", "seconds"],
)

REGISTRY = translation_registry()

WORKLOADS = {
    "tc": DEDUCTIVE_CORPUS["transitive-closure"],
    "win": DEDUCTIVE_CORPUS["win-move"],
}

GRAPHS = {
    "chain-16": chain(16),
    "chain-32": chain(32),
    "chain-64": chain(64),
    "cycle-24": cycle(24),
    "random-16": random_graph(16, 0.12, seed=21),
    "random-24": random_graph(24, 0.08, seed=21),
}

SEMANTICS = ("stratified", "inflationary", "wellfounded", "valid")


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("semantics", SEMANTICS)
def test_engine(benchmark, workload, graph_name, semantics):
    case = WORKLOADS[workload]
    if semantics == "stratified" and not case.stratified:
        pytest.skip("not stratified")
    database = edges_to_database(GRAPHS[graph_name])

    def solve():
        return run(case.program, database, semantics=semantics, registry=REGISTRY)

    outcome = benchmark.pedantic(solve, rounds=1, iterations=1)
    true_atoms = sum(len(outcome.true_rows(p)) for p in case.predicates)
    table.add(workload, graph_name, semantics, true_atoms,
              f"{benchmark.stats.stats.mean:.4f}")
