"""E13 — Theorem 4.3: stratified deduction ≡ positive IFP-algebra.

Workload, both directions: (→) stratified corpus programs translate to
algebra= programs whose valid models are total; (←) a positive IFP query
translates to a stratified deductive program on which all four engines
agree.  Rows record totality/stratification plus engine agreement.
"""

import pytest

from repro.core import evaluate
from repro.core.algebra_to_datalog import translate_expression, translation_registry
from repro.core.datalog_to_algebra import datalog_to_algebra
from repro.core.encoding import database_to_environment, environment_to_database
from repro.core.valid_eval import valid_evaluate
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database, edges_to_relation
from repro.datalog import run
from repro.datalog.stratification import is_stratified
from repro.relations import Relation

from support import ExperimentTable

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
from bench_e08_algebra_to_datalog import tc_query  # noqa: E402

table = ExperimentTable(
    "E13-stratified",
    "stratified deduction ≡ positive IFP-algebra (Thm 4.3)",
    ["direction", "case", "stratified", "total-valid-model", "agree"],
)

REGISTRY = translation_registry()
STRATIFIED = [
    name
    for name, case in DEDUCTIVE_CORPUS.items()
    if case.stratified and not case.uses_functions
]


@pytest.mark.parametrize("case_name", STRATIFIED)
def test_stratified_to_algebra(benchmark, case_name):
    case = DEDUCTIVE_CORPUS[case_name]
    database = edges_to_database(cycle(5))
    translation = datalog_to_algebra(case.program)
    env = database_to_environment(database)
    for name in translation.program.database_relations:
        env.setdefault(name, Relation([], name=name))

    def native():
        return valid_evaluate(translation.program, env, registry=REGISTRY)

    result = benchmark.pedantic(native, rounds=1, iterations=1)
    direct = run(case.program, database, semantics="stratified", registry=REGISTRY)
    agree = all(
        translation.decode_rows(result.relation(p)) == direct.true_rows(p)
        for p in case.predicates
    )
    table.add("deduction→algebra", case_name, True, result.is_well_defined(), agree)
    assert result.is_well_defined() and agree


def test_positive_ifp_to_stratified(benchmark):
    query = tc_query()
    move = edges_to_relation(chain(8), "MOVE")
    translation = translate_expression(query)
    database = environment_to_database({"MOVE": move}, {})
    expected = set(evaluate(query, {"MOVE": move}, registry=REGISTRY).items)

    def stratified_route():
        return run(
            translation.program, database, semantics="stratified", registry=REGISTRY
        )

    outcome = benchmark.pedantic(stratified_route, rounds=1, iterations=1)
    stratified_flag = is_stratified(translation.program)
    rows = {r[0] for r in outcome.true_rows(translation.result_predicate)}
    agree = rows == expected
    # Cross-check every engine.
    for semantics in ("inflationary", "wellfounded", "valid"):
        other = run(
            translation.program, database, semantics=semantics, registry=REGISTRY
        )
        agree &= {r[0] for r in other.true_rows(translation.result_predicate)} == expected
    table.add("algebra→deduction", "positive-ifp-tc", stratified_flag, True, agree)
    assert stratified_flag and agree
