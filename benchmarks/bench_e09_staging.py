"""E9 — Proposition 5.2: inflationary → valid via stage indices.

Workload: corpus programs run (a) inflationarily and (b) staged then
under the valid semantics, sweeping graph size.  Rows record the stage
bound the doubling search settles on (it tracks the inflationary round
count) and agreement of the answers.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.staging import run_staged
from repro.corpus import DEDUCTIVE_CORPUS, chain, cycle, edges_to_database
from repro.datalog import run

from support import ExperimentTable

table = ExperimentTable(
    "E09-staging",
    "R(a) inflationary in P iff R(a) valid in staged P' (Prop 5.2)",
    ["program", "graph", "stage-bound", "converged", "agree"],
)

REGISTRY = translation_registry()

CASES = [
    ("win-move", "chain-6", chain(6)),
    ("win-move", "chain-10", chain(10)),
    ("win-move", "cycle-5", cycle(5)),
    ("double-negation", "chain-6", chain(6)),
    ("transitive-closure", "chain-8", chain(8)),
]


@pytest.mark.parametrize("case_name,graph_name,edges", CASES,
                         ids=[f"{c}-{g}" for c, g, _e in CASES])
def test_staging(benchmark, case_name, graph_name, edges):
    case = DEDUCTIVE_CORPUS[case_name]
    database = edges_to_database(edges)

    def staged_route():
        return run_staged(case.program, database, semantics="valid", registry=REGISTRY)

    staged = benchmark.pedantic(staged_route, rounds=1, iterations=1)
    inflationary = run(
        case.program, database, semantics="inflationary", registry=REGISTRY
    )
    agree = all(
        staged.result.true_rows(predicate) == inflationary.true_rows(predicate)
        for predicate in case.predicates
    )
    table.add(case_name, graph_name, staged.stage_bound, staged.converged, agree)
    assert staged.converged and agree
