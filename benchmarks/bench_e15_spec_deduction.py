"""E15 — §2.2: the deductive version of specifications.

Workload: the recursive-constant miniature of Example 1 (``Sc = INS(0,
Sc)``) and growing finite-set windows.  Rows record membership totality
with and without the completion disequation, and timing tracks how the
eq/2 grounding scales with the window.
"""

import pytest

from repro.specs import valid_interpretation
from repro.specs.builtins import FALSE, TRUE, mem, nat_term, set_of_nat_spec, set_term
from repro.specs.terms import sapp

from support import ExperimentTable

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests" / "paper"))
from test_section_2_2_spec_semantics import (  # noqa: E402
    SC,
    finite_universe,
    recursive_spec,
    recursive_universe,
)

table = ExperimentTable(
    "E15-spec-deduction",
    "Valid interpretation of specs: completion totalises MEM (§2.2)",
    ["spec", "universe-terms", "completion", "mem-queries", "decided"],
)


@pytest.mark.parametrize("max_nat", [1, 2])
def test_finite_sets(benchmark, max_nat):
    universe = finite_universe(max_nat=max_nat)
    spec = set_of_nat_spec(with_completion=False)

    def interpret():
        return valid_interpretation(spec, universe=universe, max_atoms=5_000_000)

    vi = benchmark.pedantic(interpret, rounds=1, iterations=1)
    queries = decided = 0
    for i in range(max_nat + 1):
        for collection in (sapp("EMPTY"), set_term(nat_term(0))):
            queries += 1
            answers = {
                vi.truth_equal(mem(nat_term(i), collection), TRUE).name,
                vi.truth_equal(mem(nat_term(i), collection), FALSE).name,
            }
            if answers == {"TRUE", "FALSE"}:
                decided += 1
    size = sum(len(terms) for terms in universe.values())
    table.add("SET(nat) finite", size, False, queries, decided)
    assert decided == queries  # finite sets are total even without completion


@pytest.mark.parametrize("with_completion", [False, True])
def test_recursive_constant(benchmark, with_completion):
    spec = recursive_spec(with_completion=with_completion)
    universe = recursive_universe()

    def interpret():
        return valid_interpretation(spec, universe=universe, max_atoms=5_000_000)

    vi = benchmark.pedantic(interpret, rounds=1, iterations=1)
    # Is MEM(1, Sc) decided (derivably TRUE or derivably FALSE)?
    decided = int(
        vi.certainly_equal(mem(nat_term(1), SC), TRUE)
        or vi.certainly_equal(mem(nat_term(1), SC), FALSE)
    )
    size = sum(len(terms) for terms in universe.values())
    table.add("SET(nat)+Sc", size, with_completion, 1, decided)
    assert decided == (1 if with_completion else 0)
