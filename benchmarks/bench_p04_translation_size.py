"""P4 — performance: translation blowup (static program sizes).

How much bigger do programs get crossing the paradigm bridge?  Rows
record rule/definition/node counts before and after each direction, and
for the composed round trip — the syntactic cost of Theorem 6.2.
"""

import pytest

from repro.core.algebra_to_datalog import translate_program
from repro.core.datalog_to_algebra import datalog_to_algebra
from repro.core.expressions import walk
from repro.corpus import ALGEBRA_CORPUS, DEDUCTIVE_CORPUS

from support import ExperimentTable

table = ExperimentTable(
    "P04-translation-size",
    "static size across translations (blowup)",
    ["direction", "program", "size-in", "size-out", "ratio"],
)


def _algebra_size(program) -> int:
    return sum(len(list(walk(d.body))) for d in program.definitions)


def _datalog_size(program) -> int:
    return sum(1 + len(rule.body) for rule in program.rules)


@pytest.mark.parametrize("case_name", sorted(ALGEBRA_CORPUS))
def test_algebra_to_datalog_size(benchmark, case_name):
    case = ALGEBRA_CORPUS[case_name]

    translation = benchmark.pedantic(
        translate_program, args=(case.program,), rounds=1, iterations=1
    )
    size_in = _algebra_size(case.program)
    size_out = _datalog_size(translation.program)
    table.add("algebra=→deduction", case_name, size_in, size_out,
              f"{size_out / max(size_in, 1):.2f}")
    assert size_out > 0


@pytest.mark.parametrize("case_name", sorted(DEDUCTIVE_CORPUS))
def test_datalog_to_algebra_size(benchmark, case_name):
    case = DEDUCTIVE_CORPUS[case_name]

    translation = benchmark.pedantic(
        datalog_to_algebra, args=(case.program,), rounds=1, iterations=1
    )
    size_in = _datalog_size(case.program)
    size_out = _algebra_size(translation.program)
    table.add("deduction→algebra=", case_name, size_in, size_out,
              f"{size_out / max(size_in, 1):.2f}")
    assert size_out > 0


@pytest.mark.parametrize("case_name", ["win-move", "transitive-closure", "choice"])
def test_roundtrip_size(benchmark, case_name):
    case = DEDUCTIVE_CORPUS[case_name]

    def roundtrip():
        middle = datalog_to_algebra(case.program)
        return translate_program(middle.program)

    final = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    size_in = _datalog_size(case.program)
    size_out = _datalog_size(final.program)
    table.add("round trip", case_name, size_in, size_out,
              f"{size_out / max(size_in, 1):.2f}")
