"""E6 — Proposition 3.4: for monotone exp, S = exp(S) ≡ IFP_exp.

Workload: the monotone body family (TC join, guarded growth, union with
constants) on chains/cycles/random graphs of growing size; rows compare
the fixpoint-equation route (native valid evaluation) with the direct
inflationary iteration, member for member.
"""

import pytest

from repro.core import Definition, AlgebraProgram, Dialect, evaluate, ifp, valid_evaluate
from repro.core.expressions import substitute, call
from repro.corpus import chain, cycle, edges_to_relation, random_graph
from repro.relations import standard_registry

from support import ExperimentTable

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests" / "paper"))
from test_prop_3_4_monotone import MONOTONE_BODIES  # noqa: E402

table = ExperimentTable(
    "E06-monotone",
    "Monotone exp: the S = exp(S) fixpoint equals IFP_exp (Prop 3.4)",
    ["body", "graph", "members", "fixpoint==ifp"],
)

REGISTRY = standard_registry()

GRAPHS = {
    "chain-12": chain(12),
    "cycle-10": cycle(10),
    "random-10": random_graph(10, 0.2, seed=6),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("body_name", sorted(MONOTONE_BODIES))
def test_fixpoint_vs_ifp(benchmark, body_name, graph_name):
    body = MONOTONE_BODIES[body_name]
    env = {"MOVE": edges_to_relation(GRAPHS[graph_name], "MOVE")}
    program = AlgebraProgram.of(
        Definition("S", (), substitute(body, {"x": call("S")})),
        database_relations=["MOVE"],
        dialect=Dialect.ALGEBRA_EQ,
    )

    def both():
        fixpoint = valid_evaluate(program, env, registry=REGISTRY)
        inflationary = evaluate(ifp("x", body), env, registry=REGISTRY)
        return fixpoint, inflationary

    fixpoint, inflationary = benchmark.pedantic(both, rounds=1, iterations=1)
    agrees = fixpoint.is_well_defined() and set(fixpoint.true["S"]) == set(
        inflationary.items
    )
    table.add(body_name, graph_name, len(inflationary), agrees)
    assert agrees
