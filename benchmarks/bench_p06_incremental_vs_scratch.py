"""P6 — incremental view maintenance vs recompute-from-scratch.

The service tentpole claims that counting/DRed maintenance makes
single-fact updates much cheaper than re-running semi-naive evaluation
over the whole database.  This benchmark materializes transitive
closure over sparse random graphs of growing size, then times

* a from-scratch ``seminaive_stratified`` run on the updated database,
* incremental maintenance of one inserted edge, and
* incremental maintenance of one deleted edge (the DRed path),

checking after every update that the maintained model matches scratch.
The speedup must grow with N — at N=1000 incremental wins decisively.

The same scaling claim holds one layer up: publishing the post-batch
**model snapshot** (the lock-free read path) must cost O(|delta|) via
``ModelSnapshot.apply_delta``, not the O(view) full copy the service
used to pay — measured here as delta-publish vs copy-publish time.

``REPRO_BENCH_SCALE=smoke`` runs the small sizes only (the CI
bench-smoke job) with a correspondingly relaxed scaling bar.
"""

import os

import pytest

from repro.corpus import edges_to_database
from repro.datalog.seminaive import seminaive_stratified
from repro.relations import Atom
from repro.service import MaterializedView, ModelSnapshot, prepare_program

from support import ExperimentTable, timed

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

table = ExperimentTable(
    "P06-incremental-vs-scratch",
    "single-fact maintenance beats scratch recompute, increasingly with N",
    [
        "graph",
        "tc-rows",
        "scratch-sec",
        "insert-sec",
        "delete-sec",
        "speedup-insert",
        "speedup-delete",
        "snap-delta-sec",
        "snap-copy-sec",
        "snap-speedup",
        "agree",
    ],
)

TC = """
tc(X, Y) :- move(X, Y).
tc(X, Z) :- move(X, Y), tc(Y, Z).
"""

CHAIN_EDGES = 20  # edges per chain; keeps each derivation 20 rounds deep


def chain_forest(total_edges):
    """Disjoint 20-edge chains totalling ``total_edges`` edges — a sparse
    workload whose closure grows linearly with N while a single-fact
    delta stays confined to one chain."""
    edges = []
    for chain_index in range(total_edges // CHAIN_EDGES):
        nodes = [Atom(f"c{chain_index}n{i}") for i in range(CHAIN_EDGES + 1)]
        edges += list(zip(nodes, nodes[1:]))
    return edges


SIZES = (
    {"edges-100": 100, "edges-300": 300}
    if SMOKE
    else {"edges-100": 100, "edges-300": 300, "edges-1000": 1000}
)
#: The size at which the scaling claims are asserted, and the minimum
#: snapshot delta-vs-copy advantage demanded there.
SCALING_SIZE, SNAP_FACTOR = (300, 2.0) if SMOKE else (1000, 5.0)


def matches_scratch(view):
    scratch = seminaive_stratified(view.prepared.program, view.engine.edb)
    return scratch.get("tc", frozenset()) == view.rows("tc")


@pytest.mark.parametrize("graph_name", sorted(SIZES, key=SIZES.get))
def test_incremental_vs_scratch(benchmark, graph_name):
    size = SIZES[graph_name]
    database = edges_to_database(chain_forest(size))
    prepared = prepare_program("tc", TC)
    view = MaterializedView(prepared, database)

    # The delta: a mid-chain shortcut edge, then its removal (the DRed
    # path: every pair routed through it must over-delete + re-derive).
    source, target = Atom("c0n5"), Atom("c0n15")
    assert not view.engine.edb.holds("move", source, target)

    def insert_then_delete():
        view.insert("move", source, target)
        view.delete("move", source, target)

    benchmark.pedantic(insert_then_delete, rounds=3, iterations=1)

    # One instrumented round first: capture the pre-batch snapshot and
    # the batch's net delta for the publish-cost comparison below.
    base_snapshot = view.read_snapshot()
    summary = view.insert("move", source, target)
    agree = matches_scratch(view)
    view.delete("move", source, target)

    _, insert_sec = timed(view.insert, "move", source, target)
    agree = agree and matches_scratch(view)
    _, scratch_sec = timed(
        seminaive_stratified, prepared.program, view.engine.edb
    )
    _, delete_sec = timed(view.delete, "move", source, target)
    agree = agree and matches_scratch(view)

    # Per-batch snapshot publish cost: applying the batch's net delta
    # (the path the view takes) vs re-copying the whole model (what the
    # service used to pay).  Averaged over repeats — the delta apply is
    # microseconds.
    repeats = 30
    _, delta_total = timed(
        lambda: [
            base_snapshot.apply_delta(summary["plus"], summary["minus"], 999)
            for _ in range(repeats)
        ]
    )
    _, copy_total = timed(
        lambda: [ModelSnapshot.full(view.engine.model()) for _ in range(repeats)]
    )
    snap_delta_sec = delta_total / repeats
    snap_copy_sec = copy_total / repeats

    table.add(
        graph_name,
        len(view.rows("tc")),
        f"{scratch_sec:.4f}",
        f"{insert_sec:.4f}",
        f"{delete_sec:.4f}",
        f"{scratch_sec / max(insert_sec, 1e-9):.1f}x",
        f"{scratch_sec / max(delete_sec, 1e-9):.1f}x",
        f"{snap_delta_sec:.6f}",
        f"{snap_copy_sec:.6f}",
        f"{snap_copy_sec / max(snap_delta_sec, 1e-9):.1f}x",
        agree,
    )
    assert agree
    if size >= SCALING_SIZE:
        # The headline claim: single-fact maintenance beats recompute.
        assert insert_sec < scratch_sec
        assert delete_sec < scratch_sec
        # And snapshot publication scales with the delta, not the view:
        # applying the batch delta must decisively beat the full copy.
        assert snap_delta_sec * SNAP_FACTOR < snap_copy_sec, (
            f"snapshot delta publish ({snap_delta_sec:.6f}s) is not "
            f">= {SNAP_FACTOR}x cheaper than a full model copy "
            f"({snap_copy_sec:.6f}s) at N={size}"
        )
