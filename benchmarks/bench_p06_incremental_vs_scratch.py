"""P6 — incremental view maintenance vs recompute-from-scratch.

The service tentpole claims that counting/DRed maintenance makes
single-fact updates much cheaper than re-running semi-naive evaluation
over the whole database.  This benchmark materializes transitive
closure over sparse random graphs of growing size, then times

* a from-scratch ``seminaive_stratified`` run on the updated database,
* incremental maintenance of one inserted edge, and
* incremental maintenance of one deleted edge (the DRed path),

checking after every update that the maintained model matches scratch.
The speedup must grow with N — at N=1000 incremental wins decisively.
"""

import pytest

from repro.corpus import edges_to_database
from repro.datalog.seminaive import seminaive_stratified
from repro.relations import Atom
from repro.service import MaterializedView, prepare_program

from support import ExperimentTable, timed

table = ExperimentTable(
    "P06-incremental-vs-scratch",
    "single-fact maintenance beats scratch recompute, increasingly with N",
    [
        "graph",
        "tc-rows",
        "scratch-sec",
        "insert-sec",
        "delete-sec",
        "speedup-insert",
        "speedup-delete",
        "agree",
    ],
)

TC = """
tc(X, Y) :- move(X, Y).
tc(X, Z) :- move(X, Y), tc(Y, Z).
"""

CHAIN_EDGES = 20  # edges per chain; keeps each derivation 20 rounds deep


def chain_forest(total_edges):
    """Disjoint 20-edge chains totalling ``total_edges`` edges — a sparse
    workload whose closure grows linearly with N while a single-fact
    delta stays confined to one chain."""
    edges = []
    for chain_index in range(total_edges // CHAIN_EDGES):
        nodes = [Atom(f"c{chain_index}n{i}") for i in range(CHAIN_EDGES + 1)]
        edges += list(zip(nodes, nodes[1:]))
    return edges


SIZES = {"edges-100": 100, "edges-300": 300, "edges-1000": 1000}


def matches_scratch(view):
    scratch = seminaive_stratified(view.prepared.program, view.engine.edb)
    return scratch.get("tc", frozenset()) == view.rows("tc")


@pytest.mark.parametrize("graph_name", sorted(SIZES, key=SIZES.get))
def test_incremental_vs_scratch(benchmark, graph_name):
    size = SIZES[graph_name]
    database = edges_to_database(chain_forest(size))
    prepared = prepare_program("tc", TC)
    view = MaterializedView(prepared, database)

    # The delta: a mid-chain shortcut edge, then its removal (the DRed
    # path: every pair routed through it must over-delete + re-derive).
    source, target = Atom("c0n5"), Atom("c0n15")
    assert not view.engine.edb.holds("move", source, target)

    def insert_then_delete():
        view.insert("move", source, target)
        view.delete("move", source, target)

    benchmark.pedantic(insert_then_delete, rounds=3, iterations=1)

    _, insert_sec = timed(view.insert, "move", source, target)
    agree = matches_scratch(view)
    _, scratch_sec = timed(
        seminaive_stratified, prepared.program, view.engine.edb
    )
    _, delete_sec = timed(view.delete, "move", source, target)
    agree = agree and matches_scratch(view)

    table.add(
        graph_name,
        len(view.rows("tc")),
        f"{scratch_sec:.4f}",
        f"{insert_sec:.4f}",
        f"{delete_sec:.4f}",
        f"{scratch_sec / max(insert_sec, 1e-9):.1f}x",
        f"{scratch_sec / max(delete_sec, 1e-9):.1f}x",
        agree,
    )
    assert agree
    if size >= 1000:
        # The headline claim: single-fact maintenance beats recompute.
        assert insert_sec < scratch_sec
        assert delete_sec < scratch_sec
