"""E10 — Proposition 5.4: algebra= → domain-independent deduction.

Workload: the whole algebra= corpus on three graph families.  Rows record
per (program, graph): native three-valued answers vs the translated
program under the valid engine — true AND undefined sets must both match
("both interpret subtraction and negation using valid semantics").
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.equivalence import (
    algebra_answers_native,
    algebra_answers_translated,
)
from repro.corpus import ALGEBRA_CORPUS, chain, cycle, edges_to_relation, random_graph
from repro.relations import Relation

from support import ExperimentTable

table = ExperimentTable(
    "E10-algebraeq-to-datalog",
    "algebra= programs and their deductive translations agree (Prop 5.4)",
    ["program", "graph", "defined-sets", "true-members", "undefined-members", "agree"],
)

REGISTRY = translation_registry()

GRAPHS = {
    "chain-6": chain(6),
    "cycle-5": cycle(5),
    "random-7": random_graph(7, 0.25, seed=10),
}


def _environment(case, edges):
    env = {
        "MOVE": edges_to_relation(edges, "MOVE"),
        "A": Relation.of(1, 2, 3, 4, 5, name="A"),
        "B": Relation.of(3, 4, 5, 6, name="B"),
    }
    return {k: v for k, v in env.items() if k in case.program.database_relations}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("case_name", sorted(ALGEBRA_CORPUS))
def test_translation_agreement(benchmark, case_name, graph_name):
    case = ALGEBRA_CORPUS[case_name]
    env = _environment(case, GRAPHS[graph_name])

    def translated_route():
        return algebra_answers_translated(case.program, env, registry=REGISTRY)

    translated = benchmark.pedantic(translated_route, rounds=1, iterations=1)
    native = algebra_answers_native(case.program, env, registry=REGISTRY)
    agree = native == translated
    true_members = sum(len(v.true) for v in native.values())
    undefined_members = sum(len(v.undefined) for v in native.values())
    table.add(case_name, graph_name, len(native), true_members, undefined_members, agree)
    assert agree
