"""P12 — write bursts: the delta-stream circuit vs per-batch legacy.

The PR 8 tentpole claims burst absorption is where the DBSP-style
engine earns its keep: a burst of N update batches is differentiated
into one net Z-set — insertions and retractions of the same fact
cancel *before any rule fires* — and costs one circuit pass plus one
snapshot publish, where the legacy counting/DRed engine pays N full
maintenance rounds and N publishes.  The headline bar: on a
churn-heavy transitive-closure workload at 64-batch bursts, the dbsp
engine sustains **>= 3x** the per-batch legacy writer throughput
(>= 1.5x under ``REPRO_BENCH_SCALE=smoke``, where fixed costs
dominate the shorter stream).

Two scenarios:

* ``burst`` — the maintenance core in isolation: the same batch
  stream fed to the legacy engine one batch at a time (its serving
  path: ``coalesce=1``) and to the dbsp engine in bursts of 1/8/64
  via ``apply_stream`` (the drain path the group-commit leader runs);
* ``group-commit`` — the full service under 8 racing writer threads
  pushing single-batch updates through ``service.update``: the dbsp
  service coalesces whatever contention piles up (``coalesce=64``),
  the legacy service drains per batch.

Both arms verify the final model against the other side, so the
speedup is for byte-identical results.
"""

import os
import threading

import pytest

from repro.relations import Atom
from repro.service import MaterializedView, QueryService, prepare_program

from support import ExperimentTable, timed

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

#: Total update batches per measured stream (divisible by 64).
BATCHES = 192 if SMOKE else 640
#: Burst sizes for the maintenance-core scenario.
BURSTS = (1, 8, 64)
#: Writer threads for the service-level scenario.
WRITERS = 8
#: The headline acceptance bar at 64-batch bursts.
MIN_SPEEDUP = 1.5 if SMOKE else 3.0

RULES = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."
#: Chain length: every insert extends a live transitive closure, so
#: per-batch maintenance does real work.
CHAIN = 24

table = ExperimentTable(
    "P12-write-burst",
    "64-batch bursts through the dbsp circuit sustain >= 3x the "
    "per-batch legacy writer throughput (>= 1.5x at smoke scale), "
    "byte-identical final models",
    [
        "scenario",
        "engine",
        "burst",
        "batches",
        "seconds",
        "batches-per-sec",
        "speedup-vs-legacy",
    ],
)


def _batch_stream(count):
    """``count`` churn-heavy batches over growing chains: two chain
    extensions plus one retraction of a recently added edge, so a
    burst cancels much of its own work before the rules see it."""
    batches = []
    live = []
    chain = 0
    position = 0
    while len(batches) < count:
        if position >= CHAIN:
            chain += 1
            position = 0
        a = Atom(f"c{chain}n{position}")
        b = Atom(f"c{chain}n{position + 1}")
        c = Atom(f"c{chain}n{position + 2}")
        inserts = [("edge", (a, b)), ("edge", (b, c))]
        live.extend(row for _, row in inserts)
        deletes = []
        if len(live) > 3 and len(batches) % 2:
            deletes.append(("edge", live.pop(-3)))
        batches.append((inserts, deletes))
        position += 2
    return batches


def _fresh_view():
    return MaterializedView(prepare_program("p12", RULES))


def _run_legacy(batches):
    view = _fresh_view()
    for inserts, deletes in batches:
        view.apply(inserts=inserts, deletes=deletes)
    return view


def _run_dbsp(batches, burst):
    view = _fresh_view()
    for start in range(0, len(batches), burst):
        view.apply_stream(batches[start:start + burst])
    return view


@pytest.mark.parametrize("burst", BURSTS)
def test_burst_absorption_vs_per_batch_legacy(benchmark, burst):
    batches = _batch_stream(BATCHES)
    # Best-of-2 on both sides: the claim is a ratio.
    legacy_view, _ = timed(_run_legacy, batches)
    _, legacy_sec = timed(_run_legacy, batches)
    dbsp_view, _ = timed(_run_dbsp, batches, burst)
    _, dbsp_sec = timed(_run_dbsp, batches, burst)
    benchmark.pedantic(_run_dbsp, args=(batches, burst), rounds=1, iterations=1)

    assert dbsp_view.engine.model() == legacy_view.engine.model()
    assert (
        dbsp_view.read_snapshot().fingerprint
        == legacy_view.read_snapshot().fingerprint
    )
    speedup = legacy_sec / dbsp_sec
    if burst == BURSTS[0]:
        table.add(
            "burst", "legacy", 1, BATCHES,
            f"{legacy_sec:.4f}", f"{BATCHES / legacy_sec:.0f}", "1.00x",
        )
    table.add(
        "burst", "dbsp", burst, BATCHES,
        f"{dbsp_sec:.4f}", f"{BATCHES / dbsp_sec:.0f}", f"{speedup:.2f}x",
    )
    if burst == 64:
        assert speedup >= MIN_SPEEDUP, (
            f"64-batch bursts reached only {speedup:.2f}x the per-batch "
            f"legacy throughput (bar: {MIN_SPEEDUP}x; "
            f"{dbsp_sec:.4f}s vs {legacy_sec:.4f}s for {BATCHES} batches)"
        )


def _run_service(maintenance, coalesce, batches):
    """Push the stream through ``service.update`` from WRITERS threads."""
    service = QueryService(maintenance=maintenance, coalesce=coalesce)
    try:
        service.register("g", RULES)
        failures = []

        def writer(slice_):
            try:
                for inserts, deletes in slice_:
                    service.update("g", inserts=inserts, deletes=deletes)
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(batches[w::WRITERS],))
            for w in range(WRITERS)
        ]

        def run():
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        _, seconds = timed(run)
        assert not failures, failures
        rows = service.query("g", "tc")
        coalesced = service.view("g").metrics.counters[
            "delta_batches_coalesced"
        ]
        return seconds, rows, coalesced
    finally:
        service.close()


def test_group_commit_under_writer_contention(benchmark):
    """8 racing writers: the dbsp leader drains bursts, legacy cannot.

    The deletes are withheld from this scenario so the final model is
    order-independent across thread interleavings and both services
    can be checked row-for-row against each other.
    """
    batches = [
        (inserts, []) for inserts, _ in _batch_stream(BATCHES)
    ]
    legacy_sec, legacy_rows, _ = _run_service("legacy", 1, batches)
    dbsp_sec, dbsp_rows, coalesced = _run_service("dbsp", 64, batches)
    benchmark.pedantic(
        _run_service, args=("dbsp", 64, batches), rounds=1, iterations=1
    )
    assert dbsp_rows == legacy_rows
    speedup = legacy_sec / dbsp_sec
    table.add(
        "group-commit", "legacy", 1, BATCHES,
        f"{legacy_sec:.4f}", f"{BATCHES / legacy_sec:.0f}", "1.00x",
    )
    table.add(
        "group-commit", "dbsp", f"<=64 ({coalesced} coalesced)", BATCHES,
        f"{dbsp_sec:.4f}", f"{BATCHES / dbsp_sec:.0f}", f"{speedup:.2f}x",
    )
