"""E16 — §7: the results adjust to the stable-model semantics.

"The results of this work can be easily adjusted to capture other
semantics for negation, e.g. the well-founded or the stable-model
semantics."  We perform the adjustment: algebra= programs evaluated
under stable models, natively on the set equations and via the
Proposition 5.4 translation.  Rows record model counts and agreement —
the equivalence theorems survive the change of semantics.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.stable_algebra import algebra_answers_stable, stable_set_models
from repro.core.valid_eval import valid_evaluate
from repro.corpus import ALGEBRA_CORPUS, chain, cycle, edges_to_relation, random_graph

from support import ExperimentTable

table = ExperimentTable(
    "E16-stable-adjustment",
    "algebra= under stable models: native ≡ translated (the §7 adjustment)",
    ["graph", "stable-models", "cautious", "brave", "native==translated", "wfs-bracket"],
)

REGISTRY = translation_registry()
WIN = ALGEBRA_CORPUS["win-game"].program

GRAPHS = {
    "chain-6": chain(6),
    "cycle-3": cycle(3),
    "cycle-4": cycle(4),
    "cycle-6": cycle(6),
    "random-6": random_graph(6, 0.3, seed=41),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_stable_adjustment(benchmark, graph_name):
    env = {"MOVE": edges_to_relation(GRAPHS[graph_name], "MOVE")}

    def native_route():
        return stable_set_models(WIN, env, registry=REGISTRY)

    native = benchmark.pedantic(native_route, rounds=1, iterations=1)
    translated = algebra_answers_stable(WIN, env, registry=REGISTRY)
    agree = translated.models == len(native)
    if native:
        native_sets = {frozenset(m.members["WIN"]) for m in native}
        agree &= frozenset.intersection(*native_sets) == translated.cautious["WIN"]
        agree &= frozenset.union(*native_sets) == translated.brave["WIN"]

    # The classical bracket: valid-model truths hold in every stable
    # model, valid-model falsities in none.
    valid = valid_evaluate(WIN, env, registry=REGISTRY)
    bracket = all(
        valid.true["WIN"] <= model.members["WIN"]
        and not (
            (valid.candidates["WIN"] - valid.true["WIN"] - valid.undefined["WIN"])
            & model.members["WIN"]
        )
        for model in native
    )
    table.add(
        graph_name,
        len(native),
        len(translated.cautious["WIN"]),
        len(translated.brave["WIN"]),
        agree,
        bracket,
    )
    assert agree and bracket
