"""Shared infrastructure for the experiment harnesses.

The paper has no numeric tables or figures — its evaluation is a chain of
theorems, propositions and worked examples (see DESIGN.md §5).  Each
benchmark module therefore plays two roles:

* it *times* the relevant computation with pytest-benchmark, and
* it *verifies and records* the paper's claim on that workload, appending
  rows to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can
  quote paper-vs-measured outcomes.

Run with::

    pytest benchmarks/ --benchmark-only

The result tables survive in ``benchmarks/results/`` either way.
"""

from __future__ import annotations

import atexit
import time
from pathlib import Path
from typing import Dict, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentTable:
    """Collects rows for one experiment and writes them on exit."""

    _instances: List["ExperimentTable"] = []

    def __init__(self, experiment: str, claim: str, columns: Sequence[str]):
        self.experiment = experiment
        self.claim = claim
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self._written = False
        ExperimentTable._instances.append(self)

    def add(self, *values) -> None:
        row = [str(value) for value in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"{self.experiment}: row width {len(row)} != {len(self.columns)}"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"# {self.experiment}", f"# claim: {self.claim}"]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def write(self) -> None:
        if self._written or not self.rows:
            return
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment}.txt"
        path.write_text(self.render() + "\n")
        self._written = True


@atexit.register
def _flush_tables() -> None:
    for table in ExperimentTable._instances:
        table.write()


def timed(func, *args, **kwargs):
    """(result, seconds) of one call — for rows that record their own
    wall-clock alongside the pytest-benchmark measurement."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
