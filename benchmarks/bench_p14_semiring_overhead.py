"""P14 — what does carrying semiring annotations cost?

The PR 10 tentpole generalizes resident views from boolean truth to
K-relations over a pluggable commutative semiring, with two pricing
claims this benchmark pins down on P06's chain-forest workload:

* **the boolean fast path is free** — registering with an explicit
  ``semiring="bool"`` takes *exactly* the pre-annotation code paths
  (structurally asserted: the view runs a DBSP circuit, not the
  annotated engine), so maintenance stays within noise of a view built
  the seed way with no semiring argument at all; the timing ratio is a
  tripwire on top of that structural guarantee, and
* **annotations are pay-as-you-go** — the naturals / tropical /
  why-provenance engines cost more (measured and recorded below), but
  only the views that opted in pay it.

Every annotated view's *support* is checked against the boolean view
after each timed update: annotations change what rows carry, never
which rows exist.

``REPRO_BENCH_SCALE=smoke`` (the CI bench-smoke job) cuts the timing
repeats and relaxes the tripwire correspondingly.
"""

import os

import pytest

from repro.corpus import edges_to_database
from repro.relations import Atom
from repro.service import AnnotatedEngine, DBSPEngine, MaterializedView, prepare_program

from support import ExperimentTable, timed

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

table = ExperimentTable(
    "P14-semiring-overhead",
    "bool views keep the seed fast path; annotated semirings are pay-as-you-go",
    [
        "semiring",
        "graph",
        "tc-rows",
        "update-sec",
        "vs-bool",
        "engine",
        "support-agrees",
    ],
)

TC = """
tc(X, Y) :- move(X, Y).
tc(X, Z) :- move(X, Y), tc(Y, Z).
"""

CHAIN_EDGES = 20

#: Measured semirings, in reporting order; ``bool`` is the baseline the
#: ratios are computed against.
SEMIRINGS = ("bool", "naturals", "tropical", "why")

#: One size for every semiring: the ratios in the table only mean
#: something on a shared workload, and the annotated engines price a
#: single update in *seconds* here — large enough to measure reliably,
#: small enough that the smoke job stays a smoke job.
SIZE = 100
GRAPH_NAME = f"edges-{SIZE}"
#: Update cycles per timing sample — boolean shortcut updates are tens
#: of microseconds, so amortize the clock over a batch of them; the
#: annotated engines cost ~10^5x more per cycle, so a couple suffice.
REPEATS = 10 if SMOKE else 30
ANNOTATED_REPEATS = 2 if SMOKE else 3
#: The boolean tripwire: the structural assert below is the real
#: guarantee (explicit ``semiring="bool"`` constructs the same engine
#: class the seed ctor does); the timing bound just catches an
#: accidental slow path sneaking into the shared dispatch.  The 5%
#: acceptance target is checked on the recorded full-scale numbers;
#: the in-test bound is looser because per-run jitter at these
#: durations routinely exceeds 5%.
BOOL_TRIPWIRE = 2.0 if SMOKE else 1.5

_baseline: dict = {}


def chain_forest(total_edges):
    edges = []
    for chain_index in range(total_edges // CHAIN_EDGES):
        nodes = [Atom(f"c{chain_index}n{i}") for i in range(CHAIN_EDGES + 1)]
        edges += list(zip(nodes, nodes[1:]))
    return edges


def _view(semiring=None):
    database = edges_to_database(chain_forest(SIZE))
    prepared = prepare_program("tc", TC)
    if semiring is None:  # the seed ctor, no semiring argument at all
        return MaterializedView(prepared, database)
    return MaterializedView(prepared, database, semiring=semiring)


SOURCE, TARGET = Atom("c0n5"), Atom("c0n15")


def _cycles(view, repeats=REPEATS):
    """``repeats`` shortcut insert+delete cycles on ``view``."""
    for _ in range(repeats):
        view.insert("move", SOURCE, TARGET)
        view.delete("move", SOURCE, TARGET)


@pytest.mark.parametrize("semiring", SEMIRINGS)
def test_semiring_maintenance_overhead(benchmark, semiring):
    view = _view(semiring)
    repeats = REPEATS if semiring == "bool" else ANNOTATED_REPEATS
    rounds = 3 if semiring == "bool" else 1
    benchmark.pedantic(lambda: _cycles(view, 1), rounds=rounds, iterations=1)

    _cycles(view, 1)  # warm
    _, total_sec = timed(_cycles, view, repeats)
    update_sec = total_sec / repeats

    # Support agreement at the apex of one more cycle: annotations
    # change what rows carry, never which rows exist.
    oracle = _view("bool")
    view.insert("move", SOURCE, TARGET)
    oracle.insert("move", SOURCE, TARGET)
    agree = view.rows("tc") == oracle.rows("tc")
    view.delete("move", SOURCE, TARGET)
    oracle.delete("move", SOURCE, TARGET)
    agree = agree and view.rows("tc") == oracle.rows("tc")

    # The structural half of the "boolean is free" claim: an explicit
    # bool semiring runs the exact seed engine, everything else the
    # annotated one.
    if semiring == "bool":
        assert isinstance(view.engine, DBSPEngine)
        _baseline["update_sec"] = update_sec
    else:
        assert isinstance(view.engine, AnnotatedEngine)

    baseline = _baseline.get("update_sec")
    ratio = (
        f"{update_sec / max(baseline, 1e-9):.2f}x"
        if baseline is not None
        else "n/a"
    )
    table.add(
        semiring,
        GRAPH_NAME,
        len(view.rows("tc")),
        f"{update_sec:.6f}",
        ratio,
        type(view.engine).__name__,
        agree,
    )
    assert agree

    if semiring == "bool":
        # The timing tripwire: the same cycles on a view built the
        # seed way (no semiring argument).  Same engine class, same
        # code — any stable multiple here means the shared dispatch
        # grew an annotation branch on the hot path.
        seed_view = _view()
        assert type(seed_view.engine) is type(view.engine)
        _cycles(seed_view, 2)  # warm
        _, seed_total = timed(_cycles, seed_view)
        seed_sec = seed_total / REPEATS
        assert update_sec < seed_sec * BOOL_TRIPWIRE, (
            f"explicit semiring='bool' maintenance ({update_sec:.6f}s) "
            f"is more than {BOOL_TRIPWIRE}x the seed path "
            f"({seed_sec:.6f}s) — the boolean fast path regressed"
        )
        table.add(
            "bool-seed-ctor",
            GRAPH_NAME,
            len(seed_view.rows("tc")),
            f"{seed_sec:.6f}",
            f"{seed_sec / max(update_sec, 1e-9):.2f}x",
            type(seed_view.engine).__name__,
            True,
        )
