"""P2 — performance/ablation: naive vs dependency-counting least models,
and the ground-vs-solve cost split.

The semantics engines sit on one primitive (the oracle least model); this
benchmark isolates its two implementations on grounded TC workloads, and
separately times grounding vs solving — grounding dominates, which is
why the grounder carries the argument-position index.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.corpus import DEDUCTIVE_CORPUS, chain, complete, edges_to_database, random_graph
from repro.datalog.grounding import ground
from repro.datalog.semantics import least_model_naive, least_model_with_oracle

from support import ExperimentTable, timed

table = ExperimentTable(
    "P02-seminaive",
    "least-model implementations and ground/solve split (ablation)",
    ["graph", "ground-rules", "ground-sec", "counting-sec", "naive-sec", "agree"],
)

REGISTRY = translation_registry()

GRAPHS = {
    "chain-32": chain(32),
    "chain-64": chain(64),
    "random-20": random_graph(20, 0.1, seed=22),
    "complete-10": complete(10),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_least_model_implementations(benchmark, graph_name):
    program = DEDUCTIVE_CORPUS["transitive-closure"].program
    database = edges_to_database(GRAPHS[graph_name])
    gp, ground_sec = timed(ground, program, database, registry=REGISTRY)
    oracle = lambda _atom: True  # noqa: E731

    counting = benchmark.pedantic(
        least_model_with_oracle, args=(gp.rules, oracle), rounds=3, iterations=1
    )
    naive, naive_sec = timed(least_model_naive, gp.rules, oracle)
    counting_sec = benchmark.stats.stats.mean
    table.add(
        graph_name,
        len(gp.rules),
        f"{ground_sec:.4f}",
        f"{counting_sec:.4f}",
        f"{naive_sec:.4f}",
        counting == naive,
    )
    assert counting == naive
