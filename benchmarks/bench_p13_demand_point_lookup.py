"""P13 — demand-driven point lookups vs materialized full-view reads.

The PR 9 tentpole claims magic-sets demand transforms turn point
queries ("everything reachable from ``x``") from a scan of the fully
materialized answer into a read of a view that only ever derived the
demanded cone.  On a left-linear transitive closure over a long chain
the full view holds O(N^2) rows while one demanded cone holds O(N) —
the headline bar: hot demand point lookups sustain **>= 10x** the
full-read-and-filter lookup rate (>= 3x under
``REPRO_BENCH_SCALE=smoke``, where the chain — and so the scan being
beaten — is much shorter), with the answers row-identical.

Rows recorded beyond the headline ratio:

* **cold first query** — the one-time price of a new binding pattern:
  magic rewrite + demand-view materialization, paid under the base
  view lock (this is the latency a cache-miss point query sees);
* **fresh-constant lookups** — each query demands a constant never
  seeded before: one incremental seed insert derives the new cone
  through the maintenance circuit;
* **resident footprint** — model rows held by the demand entry vs the
  fully materialized view.
"""

import os
import random

import pytest

from repro.relations import Atom
from repro.service import QueryService

from support import ExperimentTable, timed

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

#: Chain length (nodes).  The full closure holds N*(N-1)/2 rows.
CHAIN = 128 if SMOKE else 320
#: Hot lookups per measured arm.
LOOKUPS = 60 if SMOKE else 240
#: Constants demanded fresh (one seed insert each).
FRESH = 20 if SMOKE else 60
#: The headline acceptance bar.
MIN_SPEEDUP = 3.0 if SMOKE else 10.0

#: Left-linear TC: the recursive occurrence passes the bound first
#: argument straight through, so a demanded constant's cone is exactly
#: its reachable suffix — O(N) rows against the O(N^2) full closure.
RULES = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."

table = ExperimentTable(
    "P13-demand-point-lookup",
    "hot demand-driven point lookups sustain >= 10x the full-view "
    "read-and-filter rate (>= 3x at smoke scale), row-identical answers",
    [
        "arm",
        "lookups",
        "seconds",
        "lookups-per-sec",
        "speedup-vs-full",
        "resident-rows",
    ],
)


def _nodes():
    return [Atom(f"n{i}") for i in range(CHAIN)]


def _build_service():
    service = QueryService()
    service.register("big", RULES)
    nodes = _nodes()
    service.update(
        "big",
        inserts=[("edge", (nodes[i], nodes[i + 1])) for i in range(CHAIN - 1)],
    )
    return service, nodes


def _full_read_lookup(service, bound):
    rows, _, _ = service.query_state("big", "tc")
    return {row for row in rows if row[0] == bound}


def _demand_lookup(service, bound):
    rows, _, _ = service.query_pattern("big", "tc", (bound, None))
    return rows


def test_point_lookup_speedup(benchmark):
    service, nodes = _build_service()
    try:
        rng = random.Random(13)
        # A small skew-hot working set from the front third of the
        # chain: long cones, so the demand arm is not winning by
        # returning trivia — but few enough distinct constants that the
        # demand entry stays a sliver of the full closure (the shape a
        # point-lookup workload has; a uniform sweep over *all*
        # constants would just rebuild the full view one cone at a
        # time).
        hot_set = rng.sample(nodes[: CHAIN // 3], 4)
        hot = [rng.choice(hot_set) for _ in range(LOOKUPS)]

        # Warm the full view (materializes + caches the closure).
        _full_read_lookup(service, hot[0])

        def full_arm():
            for bound in hot:
                _full_read_lookup(service, bound)

        _, full_sec = timed(full_arm)
        _, full_sec2 = timed(full_arm)
        full_sec = min(full_sec, full_sec2)

        # Cold first query: rewrite + build + first seed, one-time.
        _, cold_sec = timed(_demand_lookup, service, hot[0])
        for bound in set(hot):
            _demand_lookup(service, bound)  # seed the hot set

        def demand_arm():
            for bound in hot:
                _demand_lookup(service, bound)

        _, demand_sec = timed(demand_arm)
        _, demand_sec2 = timed(demand_arm)
        demand_sec = min(demand_sec, demand_sec2)
        benchmark.pedantic(demand_arm, rounds=1, iterations=1)

        # Row-identical answers on every hot constant.
        for bound in set(hot):
            assert _demand_lookup(service, bound) == _full_read_lookup(
                service, bound
            )

        # Fresh constants: each lookup is an incremental seed insert.
        fresh = nodes[CHAIN // 3 : CHAIN // 3 + FRESH]
        def fresh_arm():
            for bound in fresh:
                _demand_lookup(service, bound)

        _, fresh_sec = timed(fresh_arm)

        full_rows = service.view("big").stats()["model_rows"]
        entry = next(iter(service.demand._table.get().values()))
        demand_rows = entry.view.stats()["model_rows"]

        speedup = full_sec / demand_sec
        table.add(
            "full-read+filter", LOOKUPS, f"{full_sec:.4f}",
            f"{LOOKUPS / full_sec:.0f}", "1.00x", full_rows,
        )
        table.add(
            "demand-hot", LOOKUPS, f"{demand_sec:.4f}",
            f"{LOOKUPS / demand_sec:.0f}", f"{speedup:.2f}x", demand_rows,
        )
        table.add(
            "demand-cold-first-query", 1, f"{cold_sec:.4f}",
            f"{1 / cold_sec:.0f}", "-", "-",
        )
        table.add(
            "demand-fresh-constants", FRESH, f"{fresh_sec:.4f}",
            f"{FRESH / fresh_sec:.0f}", "-", "-",
        )
        assert speedup >= MIN_SPEEDUP, (
            f"hot demand lookups reached only {speedup:.2f}x the "
            f"full-read rate (bar: {MIN_SPEEDUP}x; "
            f"{demand_sec:.4f}s vs {full_sec:.4f}s for {LOOKUPS} lookups)"
        )
    finally:
        service.close()
