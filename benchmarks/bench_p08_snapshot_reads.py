"""P8 — lock-free snapshot reads vs the locked read path on a hot view.

The snapshot tentpole claims that publishing each consistent model as
an immutable snapshot behind an atomic reference frees queries from the
per-view lock entirely.  What that eliminates on a *single* hot view is
readers stalling behind maintenance: with locked reads, every query
must wait for whatever update batch currently holds the view lock
(tens of milliseconds of DRed work on a deep closure); with snapshot
reads a query grabs the last published model and answers immediately,
paying only GIL scheduling.

The workload: one writer thread applies expensive shortcut insert /
delete batches to a deep transitive-closure view while four reader
threads query it flat out.  The identical scenario runs under
``read_mode="locked"`` (the pre-snapshot path) and
``read_mode="snapshot"`` (the default), comparing read throughput.
The acceptance bar: snapshots buy at least 2x reads on a hot view
under concurrent updates.

``REPRO_BENCH_SCALE=smoke`` shrinks the workload for the CI
bench-smoke job and relaxes the bar accordingly.
"""

import os
import threading
import time

import pytest

from repro.corpus import edges_to_database
from repro.relations import Atom
from repro.service import QueryService

from support import ExperimentTable

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

table = ExperimentTable(
    "P08-snapshot-reads",
    "lock-free snapshot reads beat locked reads >=2x on a hot view",
    [
        "readers",
        "writer-ops",
        "locked-reads",
        "snapshot-reads",
        "locked-reads-per-sec",
        "snapshot-reads-per-sec",
        "speedup",
    ],
)

TC = """
tc(X, Y) :- move(X, Y).
tc(X, Z) :- move(X, Y), tc(Y, Z).
"""

READERS = 4
WRITER_OPS = 2 if SMOKE else 4
CHAIN = 120 if SMOKE else 220  # deep closure: one batch costs tens of ms
SPEEDUP_BAR = 1.5 if SMOKE else 2.0


def _chain(length):
    nodes = [Atom(f"n{i}") for i in range(length + 1)]
    return list(zip(nodes, nodes[1:]))


def _run_scenario(read_mode):
    """(total_reads, elapsed_seconds) for one read discipline."""
    service = QueryService(read_mode=read_mode)
    service.register("hot", TC, database=edges_to_database(_chain(CHAIN)))
    source, target = Atom("n10"), Atom(f"n{CHAIN - 10}")
    expected_spine = (Atom("n0"), Atom(f"n{CHAIN}"))
    stop = threading.Event()
    read_counts = [0] * READERS

    def writer():
        try:
            for _ in range(WRITER_OPS):
                service.insert("hot", "move", source, target)
                service.delete("hot", "move", source, target)
        finally:
            stop.set()

    def reader(index):
        while not stop.is_set():
            rows = service.query("hot", "tc")
            # Every answer is a complete model at some version: the
            # full chain spine is in the closure of both versions.
            assert expected_spine in rows
            read_counts[index] += 1

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(index,))
        for index in range(READERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not any(thread.is_alive() for thread in threads)
    # The writer's last delete landed: the shortcut is gone again.
    assert (source, target) not in service.view("hot").database.rows("move")
    return sum(read_counts), elapsed


def test_snapshot_reads_beat_locked_reads(benchmark):
    # Warm both code paths once so neither scenario pays first-run costs.
    _run_scenario("locked")
    _run_scenario("snapshot")

    locked_reads, locked_elapsed = _run_scenario("locked")
    snapshot_reads, snapshot_elapsed = benchmark.pedantic(
        lambda: _run_scenario("snapshot"), rounds=1, iterations=1
    )
    locked_rate = locked_reads / max(locked_elapsed, 1e-9)
    snapshot_rate = snapshot_reads / max(snapshot_elapsed, 1e-9)
    speedup = snapshot_rate / max(locked_rate, 1e-9)

    table.add(
        READERS,
        WRITER_OPS,
        locked_reads,
        snapshot_reads,
        f"{locked_rate:.0f}",
        f"{snapshot_rate:.0f}",
        f"{speedup:.1f}x",
    )
    # The acceptance bar: lock-free snapshot reads must at least double
    # query throughput on a hot view under concurrent updates.
    assert speedup >= SPEEDUP_BAR, (
        f"snapshot reads only reached {speedup:.2f}x the locked-read "
        f"throughput ({snapshot_rate:.0f} vs {locked_rate:.0f} reads/sec)"
    )
