"""P3 — performance/ablation: native three-valued evaluation vs
translate-to-deduction.

The same algebra= programs answered by (a) the native alternating
fixpoint on set equations and (b) Proposition 5.4 translation plus the
ground valid engine.  Both are correct (E10); this measures their
relative cost as the database grows — the design-decision ablation from
DESIGN.md §3.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.core.equivalence import (
    algebra_answers_native,
    algebra_answers_translated,
)
from repro.corpus import ALGEBRA_CORPUS, chain, cycle, edges_to_relation, random_graph

from support import ExperimentTable, timed

table = ExperimentTable(
    "P03-native-vs-translated",
    "native 3-valued evaluation vs translate+solve (ablation)",
    ["program", "graph", "native-sec", "translated-sec", "agree"],
)

REGISTRY = translation_registry()

CASES = [
    ("win-game", "chain-16", chain(16)),
    ("win-game", "cycle-12", cycle(12)),
    ("win-game", "random-12", random_graph(12, 0.15, seed=23)),
    ("transitive-closure", "chain-10", chain(10)),
    ("transitive-closure", "random-10", random_graph(10, 0.15, seed=23)),
]


@pytest.mark.parametrize(
    "case_name,graph_name,edges", CASES, ids=[f"{c}-{g}" for c, g, _e in CASES]
)
def test_routes(benchmark, case_name, graph_name, edges):
    case = ALGEBRA_CORPUS[case_name]
    env = {"MOVE": edges_to_relation(edges, "MOVE")}

    native = benchmark.pedantic(
        algebra_answers_native,
        args=(case.program, env),
        kwargs={"registry": REGISTRY},
        rounds=1,
        iterations=1,
    )
    native_sec = benchmark.stats.stats.mean
    translated, translated_sec = timed(
        algebra_answers_translated, case.program, env, registry=REGISTRY
    )
    table.add(
        case_name,
        graph_name,
        f"{native_sec:.4f}",
        f"{translated_sec:.4f}",
        native == translated,
    )
    assert native == translated
