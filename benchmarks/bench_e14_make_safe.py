"""E14 — Proposition 4.2: making domain-independent queries safe.

Workload: unsafe-but-d.i. programs guarded by `make_safe` over windows of
growing size.  Rows record: the guarded program is safe, stratification
is preserved, and (the d.i. criterion) answers are window-invariant once
the window covers the query's active domain.
"""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.datalog import Database, run
from repro.datalog.parser import parse_program
from repro.datalog.safety import is_safe_program, make_safe
from repro.datalog.stratification import is_stratified
from repro.relations import Atom, Universe

from support import ExperimentTable

table = ExperimentTable(
    "E14-make-safe",
    "Every d.i. query has an equivalent safe (and stratification-preserving) query (Prop 4.2)",
    ["query", "window", "safe", "stratified", "window-invariant"],
)

REGISTRY = translation_registry()

UNSAFE_DI = {
    "neg-join": "p(X) :- e(X, Y), not f(Y, X).\nf(Y, X) :- e(X, Y), marked(Y).",
    "double-guarded": (
        "q(X) :- not dead(X), alive(X).\n"
        "dead(X) :- corpse(X).\n"
        "alive(X) :- person(X), not dead(X)."
    ),
}


def _database():
    db = Database()
    atoms = [Atom(f"v{i}") for i in range(6)]
    for i in range(5):
        db.add("e", atoms[i], atoms[i + 1])
    db.add("marked", atoms[2]).add("marked", atoms[4])
    for atom in atoms[:4]:
        db.add("person", atom)
    db.add("corpse", atoms[1])
    return db


@pytest.mark.parametrize("extra", [0, 4, 16])
@pytest.mark.parametrize("query_name", sorted(UNSAFE_DI))
def test_make_safe(benchmark, query_name, extra):
    program = parse_program(UNSAFE_DI[query_name])
    database = _database()
    base_window = list(database.active_domain())
    window = Universe(base_window + [Atom(f"pad{i}") for i in range(extra)])
    safe = make_safe(program, window)

    def evaluate():
        return run(safe, database, semantics="wellfounded", registry=REGISTRY)

    outcome = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    reference = run(
        make_safe(program, Universe(base_window)),
        database,
        semantics="wellfounded",
        registry=REGISTRY,
    )
    invariant = all(
        outcome.true_rows(predicate) == reference.true_rows(predicate)
        for predicate in program.idb_predicates()
    )
    table.add(
        query_name,
        f"+{extra}",
        is_safe_program(safe),
        is_stratified(safe),
        invariant,
    )
    assert is_safe_program(safe)
    assert invariant
