"""P11 — the cost of durability: WAL overhead and cold-start recovery.

The durability tentpole claims the write-ahead log is cheap relative
to incremental maintenance: journaling is one buffered-JSON append per
acked batch, so with ``fsync=off`` the durable write path must stay
within **15%** of the pure in-memory service on the P06-style
incremental workload.  ``fsync=batch`` and ``fsync=always`` buy their
extra guarantees with real disk flushes — recorded here so the price
is a measured number, not folklore.

The second half times cold-start recovery against the WAL length: a
crashed service with N journaled operations must replay exactly N
records through the normal update path, so recovery time scales with
the log, and a checkpoint resets that cost to near zero.

``REPRO_BENCH_SCALE=smoke`` runs the small sizes (the CI bench-smoke
job); the overhead bar applies at every scale.
"""

import os

import pytest

from repro.service import QueryService

from support import ExperimentTable, timed

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

#: Acked single-fact updates per measured stream.
OPS = 240 if SMOKE else 800
#: Nodes per chain — every insert extends a live transitive closure.
CHAIN = 30
#: WAL lengths for the recovery-time curve.
RECOVERY_SIZES = (100, 400) if SMOKE else (100, 400, 1600)
#: The headline acceptance bar: fsync=off overhead vs pure in-memory.
MAX_OFF_OVERHEAD = 0.15

RULES = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."

table = ExperimentTable(
    "P11-durability",
    "fsync=off WAL overhead <= 15% on the incremental write path; "
    "cold recovery replays the log through the normal update path",
    [
        "scenario",
        "fsync",
        "ops",
        "seconds",
        "ops-per-sec",
        "overhead-vs-memory",
        "replayed",
        "recovery-sec",
    ],
)


def _edges(count):
    """``count`` chain edges: disjoint chains of ``CHAIN`` hops, so each
    insert triggers incremental maintenance over one growing chain."""
    edges = []
    chain = 0
    while len(edges) < count:
        nodes = [f"c{chain}n{i}" for i in range(CHAIN + 1)]
        edges.extend(zip(nodes, nodes[1:]))
        chain += 1
    return edges[:count]


def _run_stream(service, edges):
    service.register("g", RULES)
    for x, y in edges:
        service.insert("g", "edge", x, y)


def _time_stream(edges, data_dir=None, fsync="off"):
    """Seconds to push the whole op stream through one fresh service."""
    if data_dir is None:
        service = QueryService()
    else:
        service = QueryService(
            data_dir=str(data_dir), fsync=fsync, checkpoint_every=10**9
        )
    try:
        _, seconds = timed(_run_stream, service, edges)
    finally:
        service.close()
    return seconds


@pytest.mark.parametrize("fsync", ["off", "batch", "always"])
def test_wal_write_path_overhead(benchmark, tmp_path, fsync):
    edges = _edges(OPS)
    # Best-of-2 for both arms: the comparison is overhead, so both
    # sides get the same favourable treatment.
    baseline = min(_time_stream(edges) for _ in range(2))
    counter = iter(range(100))

    def durable_run():
        return _time_stream(
            edges, tmp_path / f"run-{next(counter)}", fsync
        )

    durable = min(durable_run() for _ in range(2))
    benchmark.pedantic(durable_run, rounds=1, iterations=1)
    overhead = durable / baseline - 1.0
    table.add(
        "write-path",
        fsync,
        OPS,
        f"{durable:.4f}",
        f"{OPS / durable:.0f}",
        f"{overhead * 100:+.1f}%",
        "-",
        "-",
    )
    if fsync == "off":
        assert overhead <= MAX_OFF_OVERHEAD, (
            f"fsync=off WAL overhead {overhead:.1%} exceeds "
            f"{MAX_OFF_OVERHEAD:.0%} vs the in-memory write path "
            f"({durable:.4f}s vs {baseline:.4f}s for {OPS} ops)"
        )


@pytest.mark.parametrize("records", RECOVERY_SIZES)
def test_cold_recovery_time_scales_with_log(benchmark, tmp_path, records):
    edges = _edges(records)
    service = QueryService(
        data_dir=str(tmp_path), fsync="off", checkpoint_every=10**9
    )
    _run_stream(service, edges)
    expected_rows = len(service.query("g", "tc"))
    # Crash: no final checkpoint, so every boot replays the whole log.
    service.durability.close(final_checkpoint=False)

    reports = []

    def cold_boot():
        recovered = QueryService(data_dir=str(tmp_path), fsync="off")
        reports.append(recovered.last_recovery)
        assert len(recovered.query("g", "tc")) == expected_rows
        # Leave the directory exactly as found (no shutdown
        # checkpoint), so every round replays the same log.
        recovered.durability.close(final_checkpoint=False)
        recovered.close()

    _, recovery_sec = timed(cold_boot)
    benchmark.pedantic(cold_boot, rounds=2, iterations=1)
    assert all(r.replayed_records == records + 1 for r in reports)
    table.add(
        "cold-recovery",
        "off",
        records,
        "-",
        "-",
        "-",
        records + 1,
        f"{recovery_sec:.4f}",
    )
