"""P9 — wait-free reads end to end: COW name table + compactor.

PR 4 made answers lock-free (published model snapshots); this PR makes
the *whole* read path wait-free and bounds its worst read.  Two claims,
two workloads:

**Hot-read tail latency.**  Per-query name resolution now comes off a
copy-on-write name table (one atomic reference load) instead of the
registry read lock, and the answer off the published snapshot instead
of the view lock.  Four open-loop readers query a deep transitive-
closure view on a fixed cadence while a writer applies expensive
shortcut batches and churns other registrations; per-read latencies
are corrected for coordinated omission (a read blocked for ``L`` at
cadence ``T`` also records the ``L/T`` requests it silently queued —
the wrk2/HdrHistogram discipline, without which a closed-loop reader
under-samples exactly the blocked reads the tail is about) and the
p99 compared between ``read_mode="locked"`` (the pre-snapshot
baseline: registry read lock + view lock per query) and the wait-free
default.  The acceptance bar: **>= 2x better p99** (the observed win
is orders of magnitude — a locked reader's tail is the writer's batch
duration).

**Cold reads after a write burst.**  Delta-maintained snapshots stack
one copy-on-write cell per batch; with no interleaved reads the first
query after a burst used to pay the whole chain walk.  The compactor
(``compactor="on-publish"``) flattens chains past the depth cap every
Nth publish, so the burst amortizes the walk into the write path.  A
16-batch burst lands on an 8k-row predicate, then one cold query is
timed, compactor off vs on.

``REPRO_BENCH_SCALE=smoke`` shrinks both workloads for the CI
bench-smoke job and relaxes the tail bar accordingly.
"""

import os
import threading
import time

from repro.corpus import edges_to_database
from repro.datalog.database import Database
from repro.relations import Atom
from repro.service import QueryService

from support import ExperimentTable

SMOKE = os.environ.get("REPRO_BENCH_SCALE") == "smoke"

tail_table = ExperimentTable(
    "P09-wait-free-reads",
    "COW name table + snapshot reads beat locked reads >=2x on p99",
    [
        "readers",
        "mode",
        "reads",
        "p50-us",
        "p99-us",
        "p99-speedup",
    ],
)

chain_table = ExperimentTable(
    "P09-chain-compaction",
    "on-publish compaction bounds the cold read after a write burst",
    [
        "base-rows",
        "burst",
        "compactor",
        "chain-depth",
        "cold-read-us",
        "speedup",
    ],
)

TC = """
tc(X, Y) :- move(X, Y).
tc(X, Z) :- move(X, Y), tc(Y, Z).
"""
FILLER = "p(X) :- b(X).\nb(s).\n"

READERS = 4
FILLER_VIEWS = 8
WRITER_OPS = 2 if SMOKE else 4
CHAIN = 120 if SMOKE else 220  # deep closure: one batch costs tens of ms
READ_INTERVAL = 0.002  # the open-loop cadence: one read per 2ms
TAIL_BAR = 1.5 if SMOKE else 2.0

BASE_ROWS = 2_000 if SMOKE else 8_000
BURSTS = 16
COLD_REPS = 4
COLD_BAR = 1.2 if SMOKE else 1.5


def _chain(length):
    nodes = [Atom(f"n{i}") for i in range(length + 1)]
    return list(zip(nodes, nodes[1:]))


def _percentile(samples, q):
    return samples[min(len(samples) - 1, int(q * len(samples)))]


def _run_tail_scenario(read_mode, compactor):
    """(reads, p50_seconds, p99_seconds) for one read discipline."""
    service = QueryService(read_mode=read_mode, compactor=compactor)
    service.register("hot", TC, database=edges_to_database(_chain(CHAIN)))
    for index in range(FILLER_VIEWS):
        service.register(f"filler{index}", FILLER)
    source, target = Atom("n10"), Atom(f"n{CHAIN - 10}")
    expected_spine = (Atom("n0"), Atom(f"n{CHAIN}"))
    stop = threading.Event()
    latencies = [[] for _ in range(READERS)]

    def writer():
        try:
            for index in range(WRITER_OPS):
                service.insert("hot", "move", source, target)
                service.delete("hot", "move", source, target)
                # Registration churn: the locked baseline resolves every
                # query under the registry lock this write side hits.
                service.register(f"filler{index % FILLER_VIEWS}", FILLER)
        finally:
            stop.set()

    def reader(index):
        samples = latencies[index]
        while not stop.is_set():
            start = time.perf_counter()
            rows = service.query("hot", "tc")
            elapsed = time.perf_counter() - start
            # Every answer is a complete model at some version.
            assert expected_spine in rows
            # Coordinated-omission correction: a read that blocked for
            # longer than the cadence also stands for the requests the
            # open-loop client would have issued meanwhile.
            samples.append(elapsed)
            queued = elapsed - READ_INTERVAL
            while queued > 0:
                samples.append(queued)
                queued -= READ_INTERVAL
            if elapsed < READ_INTERVAL:
                time.sleep(READ_INTERVAL - elapsed)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(index,))
        for index in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not any(thread.is_alive() for thread in threads)
    samples = sorted(s for per_reader in latencies for s in per_reader)
    return len(samples), _percentile(samples, 0.5), _percentile(samples, 0.99)


def test_wait_free_tail_beats_locked_tail(benchmark):
    # Warm both code paths once so neither scenario pays first-run costs.
    _run_tail_scenario("locked", "off")
    _run_tail_scenario("snapshot", "on-publish")

    locked_reads, locked_p50, locked_p99 = _run_tail_scenario(
        "locked", "off"
    )
    wait_free_reads, wait_free_p50, wait_free_p99 = benchmark.pedantic(
        lambda: _run_tail_scenario("snapshot", "on-publish"),
        rounds=1,
        iterations=1,
    )
    speedup = locked_p99 / max(wait_free_p99, 1e-9)

    tail_table.add(
        READERS, "locked", locked_reads,
        f"{locked_p50 * 1e6:.1f}", f"{locked_p99 * 1e6:.1f}", "1.0x",
    )
    tail_table.add(
        READERS, "wait-free", wait_free_reads,
        f"{wait_free_p50 * 1e6:.1f}", f"{wait_free_p99 * 1e6:.1f}",
        f"{speedup:.0f}x",
    )
    # The acceptance bar: the wait-free read path must at least halve
    # the hot-read tail under concurrent maintenance + name churn.
    assert speedup >= TAIL_BAR, (
        f"wait-free reads only reached {speedup:.2f}x the locked p99 "
        f"({wait_free_p99 * 1e6:.0f}us vs {locked_p99 * 1e6:.0f}us)"
    )


def _seed_base():
    database = Database()
    database.declare("base")
    for index in range(BASE_ROWS):
        database.add("base", Atom(f"r{index}"))
    return database


def _run_cold_scenario(compactor):
    """(median_cold_read_seconds, chain_depth_seen) for one mode."""
    service = QueryService(
        compactor=compactor,
        compact_depth=2,
        compact_interval=4,
        cache_capacity=8,
    )
    service.register("cold", "p(X) :- base(X).\n", database=_seed_base())
    service.query("cold", "p")  # flatten the initial snapshot
    reads, depths = [], []
    for rep in range(COLD_REPS):
        for index in range(BURSTS):
            service.insert("cold", "base", Atom(f"n{rep}_{index}"))
        depths.append(service.view("cold").chain_depth())
        start = time.perf_counter()
        service.query("cold", "p")
        reads.append(time.perf_counter() - start)
    reads.sort()
    return reads[len(reads) // 2], max(depths)


def test_compactor_bounds_cold_reads_after_bursts(benchmark):
    _run_cold_scenario("off")  # warm

    uncompacted, deep = _run_cold_scenario("off")
    compacted, shallow = benchmark.pedantic(
        lambda: _run_cold_scenario("on-publish"), rounds=1, iterations=1
    )
    speedup = uncompacted / max(compacted, 1e-9)

    chain_table.add(
        BASE_ROWS, BURSTS, "off", deep,
        f"{uncompacted * 1e6:.1f}", "1.0x",
    )
    chain_table.add(
        BASE_ROWS, BURSTS, "on-publish", shallow,
        f"{compacted * 1e6:.1f}", f"{speedup:.1f}x",
    )
    # The burst must not leave the reader a full-depth chain walk.
    assert shallow < deep
    assert speedup >= COLD_BAR, (
        f"compacted cold read only {speedup:.2f}x faster "
        f"({compacted * 1e6:.0f}us vs {uncompacted * 1e6:.0f}us)"
    )
