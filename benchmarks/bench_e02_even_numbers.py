"""E2 — Example 1/3: the infinite even-number set on bounded windows.

Workload: ``S^e = {0} ∪ MAP_{+2}(S^e)`` evaluated under the valid
semantics inside windows of growing size.  Claims checked per window:
membership is total (TRUE on evens, FALSE on odds — never undefined),
and the guarded-in-program variant agrees with the windowed variant.
"""

import pytest

from repro.datalog.semantics import Truth
from repro.lang import parse_algebra_program
from repro.core import Dialect, valid_evaluate
from repro.relations import Universe, standard_registry

from support import ExperimentTable

table = ExperimentTable(
    "E02-even-numbers",
    "MEM on the recursive even-number set is total in the valid model (Ex. 1/3)",
    ["window", "evens-true", "odds-false", "undefined", "well-defined"],
)

REGISTRY = standard_registry()
PROGRAM = parse_algebra_program(
    "Se = {0} u map[add2(it)](Se);", dialect=Dialect.ALGEBRA_EQ
)


def _evaluate(bound: int):
    window = Universe(range(bound + 1))
    return valid_evaluate(PROGRAM, {}, registry=REGISTRY, universe=window)


@pytest.mark.parametrize("bound", [8, 16, 32, 64])
def test_even_numbers_window(benchmark, bound):
    result = benchmark.pedantic(_evaluate, args=(bound,), rounds=1, iterations=1)
    evens_true = sum(
        1 for n in range(0, bound + 1, 2) if result.truth_of("Se", n) is Truth.TRUE
    )
    odds_false = sum(
        1 for n in range(1, bound + 1, 2) if result.truth_of("Se", n) is Truth.FALSE
    )
    undefined = len(result.undefined["Se"])
    table.add(bound, evens_true, odds_false, undefined, result.is_well_defined())
    assert evens_true == bound // 2 + 1
    assert odds_false == (bound + 1) // 2
    assert undefined == 0
