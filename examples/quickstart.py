#!/usr/bin/env python3
"""Quickstart: the two paradigms and the bridge between them.

This walks the paper's headline result end to end on a small database:

1. define a database (a named set of MOVE pairs);
2. write the WIN query as an ``algebra=`` program (Section 3.2) and
   evaluate it natively under the valid semantics;
3. write the same query as a deductive program (Section 4) and run it
   under the valid model semantics;
4. translate each into the other (Sections 5 and 6) and confirm all four
   answers coincide — Theorem 6.2 in action.

Run:  python examples/quickstart.py
"""

from repro import (
    Atom,
    Database,
    Dialect,
    parse_algebra_program,
    parse_program,
    run,
    translation_registry,
    valid_evaluate,
)
from repro.core import (
    database_to_environment,
    datalog_to_algebra,
    environment_to_database,
    translate_program,
)
from repro.relations import Relation, tup

registry = translation_registry()

# ---------------------------------------------------------------------------
# 1. The database: a game graph.  b and d are sinks (no moves).
# ---------------------------------------------------------------------------
a, b, c, d = (Atom(x) for x in "abcd")
move = Relation([tup(a, b), tup(a, c), tup(c, d)], name="MOVE")
print("MOVE =", move)

# ---------------------------------------------------------------------------
# 2. The algebra= side: WIN = π1(MOVE − (π1(MOVE) × WIN))
# ---------------------------------------------------------------------------
algebra_program = parse_algebra_program(
    """
    relations MOVE;
    WIN = pi1(MOVE - (pi1(MOVE) * WIN));
    """,
    dialect=Dialect.ALGEBRA_EQ,
    name="win-game",
)
native = valid_evaluate(algebra_program, {"MOVE": move}, registry=registry)
print("\n[algebra=, native 3-valued evaluation]")
print("  WIN true      :", sorted(v.name for v in native.true["WIN"]))
print("  WIN undefined :", sorted(v.name for v in native.undefined["WIN"]))
print("  well-defined  :", native.is_well_defined())

# ---------------------------------------------------------------------------
# 3. The deductive side: win(X) :- move(X, Y), not win(Y).
# ---------------------------------------------------------------------------
deductive_program = parse_program("win(X) :- move(X, Y), not win(Y).", name="win")
database = Database()
for pair in move.items:
    database.add("move", pair.component(1), pair.component(2))
deductive = run(deductive_program, database, semantics="valid", registry=registry)
print("\n[deduction, valid model semantics]")
print("  win true      :", sorted(r[0].name for r in deductive.true_rows("win")))

# ---------------------------------------------------------------------------
# 4a. algebra= → deduction (Proposition 5.4)
# ---------------------------------------------------------------------------
to_datalog = translate_program(algebra_program)
translated_db = environment_to_database({"MOVE": move}, {})
via_datalog = run(to_datalog.program, translated_db, semantics="valid", registry=registry)
win_pred = to_datalog.predicate_of["WIN"]
print("\n[algebra= translated to deduction]")
print("  rules:")
for rule in to_datalog.program.rules:
    print("   ", rule)
print("  WIN true      :", sorted(r[0].name for r in via_datalog.true_rows(win_pred)))

# ---------------------------------------------------------------------------
# 4b. deduction → algebra= (Proposition 6.1)
# ---------------------------------------------------------------------------
to_algebra = datalog_to_algebra(deductive_program)
environment = database_to_environment(database)
via_algebra = valid_evaluate(to_algebra.program, environment, registry=registry)
print("\n[deduction translated to algebra=]")
print("  simulation equation:")
for definition in to_algebra.program.definitions:
    print("   ", definition)
print("  win true      :", sorted(v.name for v in via_algebra.true["win"]))

# ---------------------------------------------------------------------------
# The four answers agree.
# ---------------------------------------------------------------------------
answers = {
    "algebra= native": frozenset(native.true["WIN"]),
    "deduction": frozenset(r[0] for r in deductive.true_rows("win")),
    "algebra=→deduction": frozenset(r[0] for r in via_datalog.true_rows(win_pred)),
    "deduction→algebra=": frozenset(via_algebra.true["win"]),
}
assert len(set(answers.values())) == 1, answers
print("\nAll four routes agree:", sorted(v.name for v in next(iter(answers.values()))))
