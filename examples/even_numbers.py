#!/usr/bin/env python3
"""Example 1 / Example 3: the infinite set of even numbers, three ways.

The paper defines S^e (all even naturals) in three styles:

1. an explicit staging function F(i) returning all evens below 2i, with
   S^e as the infinite union of the F(i) — here a deductive program;
2. the recursive algebra= equation  S^e = {0} ∪ MAP_{+2}(S^e)  evaluated
   inside an explicit bounded window (Universe);
3. the same equation bounded *inside the program* by a selection guard.

All three agree on the window, and — the point of Section 2.2 —
membership is TOTAL: MEM(7, S^e) is certainly FALSE, not merely
underivable, because the valid computation turns "no possible
derivation" into certain falsity.

Run:  python examples/even_numbers.py
"""

from repro import (
    Database,
    Dialect,
    Universe,
    parse_algebra_program,
    parse_program,
    run,
    standard_registry,
    valid_evaluate,
)
from repro.datalog.semantics import Truth

BOUND = 30
registry = standard_registry()

# ---------------------------------------------------------------------------
# Style 1: the staging function F(i), as a deductive program.
# ---------------------------------------------------------------------------
staged = parse_program(
    f"""
    % F(i) yields every even number below 2i (the paper's auxiliary F)
    f(0, N) :- N = 0.
    f(I, N) :- f(J, N), I = succ(J), I <= {BOUND // 2 + 1}.
    f(I, N) :- f(J, M), I = succ(J), N = double(J), I <= {BOUND // 2 + 1}.
    se(N) :- f(I, N).
    """,
    name="staged-evens",
)
result1 = run(staged, Database(), semantics="valid", registry=registry)
evens1 = sorted(r[0] for r in result1.true_rows("se"))
print("style 1 (staged deduction):  ", evens1)

# ---------------------------------------------------------------------------
# Style 2: S^e = {0} ∪ MAP_{+2}(S^e) with an explicit window.
# ---------------------------------------------------------------------------
recursive = parse_algebra_program(
    """
    Se = {0} u map[add2(it)](Se);
    """,
    dialect=Dialect.ALGEBRA_EQ,
    name="recursive-evens",
)
window = Universe(range(BOUND + 1))
result2 = valid_evaluate(recursive, {}, registry=registry, universe=window)
evens2 = sorted(result2.true["Se"])
print("style 2 (algebra= + window): ", evens2)

# ---------------------------------------------------------------------------
# Style 3: the guard written into the program.
# ---------------------------------------------------------------------------
guarded = parse_algebra_program(
    f"""
    Se = {{0}} u sigma[it <= {BOUND}](map[add2(it)](Se));
    """,
    dialect=Dialect.ALGEBRA_EQ,
    name="guarded-evens",
)
result3 = valid_evaluate(guarded, {}, registry=registry)
evens3 = sorted(result3.true["Se"])
print("style 3 (algebra= + guard):  ", evens3)

assert evens1 == evens2 == evens3 == list(range(0, BOUND + 1, 2))

# ---------------------------------------------------------------------------
# Membership is total: the Section 2.2 point.
# ---------------------------------------------------------------------------
print("\nmembership answers (style 2):")
for n in (0, 7, 8, 23, 30):
    verdict = result2.truth_of("Se", n)
    assert verdict in (Truth.TRUE, Truth.FALSE)
    print(f"  MEM({n:2}, Se) = {'T' if verdict is Truth.TRUE else 'F'}")
print("  total on the window:", result2.is_well_defined())

print(
    "\nOdd numbers are *certainly false*, not undefined — the valid"
    "\ncomputation adds every underivable membership to F, which is what"
    "\nthe disequation MEM(x,y) ≠ T → MEM(x,y) = F exploits."
)
