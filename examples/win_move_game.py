#!/usr/bin/env python3
"""The WIN game of Example 3: wins, losses, and drawn positions.

"Consider a game where one wins if the opponent has no moves (as in
checkers)."  The recursive equation

    WIN = π1(MOVE − (π1(MOVE) × WIN))

is evaluated under the valid semantics on several game graphs.  On
acyclic graphs the valid interpretation is two-valued (every position is
a win or a loss); cyclic graphs may leave positions *undefined* — these
are exactly the game-theoretic draws, and the paper's reason why
``algebra=`` programs can fail to have an initial valid model.

Run:  python examples/win_move_game.py
"""

from repro import Dialect, parse_algebra_program, valid_evaluate
from repro.corpus import chain, cycle, edges_to_relation, grid, random_graph
from repro.datalog.semantics import Truth
from repro.relations import Atom

program = parse_algebra_program(
    """
    relations MOVE;
    WIN = pi1(MOVE - (pi1(MOVE) * WIN));
    """,
    dialect=Dialect.ALGEBRA_EQ,
    name="win-game",
)


def analyse(title, edges):
    move = edges_to_relation(edges, "MOVE")
    result = valid_evaluate(program, {"MOVE": move})
    positions = sorted(
        {p.component(1) for p in move.items} | {p.component(2) for p in move.items},
        key=lambda atom: atom.name,
    )
    wins = [p.name for p in positions if result.truth_of("WIN", p) is Truth.TRUE]
    losses = [p.name for p in positions if result.truth_of("WIN", p) is Truth.FALSE]
    draws = [p.name for p in positions if result.truth_of("WIN", p) is Truth.UNDEFINED]
    print(f"\n== {title} ({len(edges)} moves, {len(positions)} positions)")
    print(f"   wins   ({len(wins):2}): {' '.join(wins) or '-'}")
    print(f"   losses ({len(losses):2}): {' '.join(losses) or '-'}")
    print(f"   draws  ({len(draws):2}): {' '.join(draws) or '-'}")
    print(f"   initial valid model exists: {result.is_well_defined()}")
    return result


# A chain: strictly alternating wins and losses.
analyse("chain n0 → n1 → ... → n5", chain(6))

# A grid: the classic take-away game shape, acyclic, fully decided.
analyse("3×3 grid (right/down moves)", grid(3, 3))

# A pure cycle: nobody can force a win — everything is drawn.
analyse("4-cycle", cycle(4))

# The paper's one-liner: MOVE = {[a, a]} leaves a undefined.
a = Atom("a")
result = analyse("self-loop {[a, a]}", [(a, a)])
assert result.truth_of("WIN", a) is Truth.UNDEFINED

# A cycle with an escape hatch: the escape decides the whole cycle.
b, c = Atom("b"), Atom("c")
analyse("cycle a ↔ b with escape b → c", [(a, b), (b, a), (b, c)])

# A random game: a mix of all three verdicts.
analyse("random graph (n=10, p=0.2)", random_graph(10, 0.2, seed=4))

print(
    "\nDraws are exactly the undefined memberships of the valid model —"
    "\nthe algebra= program is well-defined iff the game has no draws."
)
