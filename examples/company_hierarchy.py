#!/usr/bin/env python3
"""A realistic deductive database solved in both paradigms.

An org chart with a management hierarchy, project assignments, and a
security policy.  The queries mix recursion, stratified negation, and
(for the escalation rule) genuinely non-stratified negation:

* ``chain_of_command`` — transitive closure of ``reports_to``;
* ``unsupervised``    — employees on a project no manager of theirs is on
                        (stratified negation under recursion);
* ``escalates``       — a mutual-blame rule that is not stratified and
                        leaves a blame cycle undefined (three-valued!).

Each query runs deductively under the valid semantics and is then
translated to ``algebra=`` (Proposition 6.1) and re-evaluated natively;
the answers coincide, including the undefined ones.

Run:  python examples/company_hierarchy.py
"""

from repro import Database, parse_program, run, translation_registry
from repro.core import database_to_environment, datalog_to_algebra, valid_evaluate
from repro.relations import Atom, Relation

registry = translation_registry()

# ---------------------------------------------------------------------------
# The extensional database.
# ---------------------------------------------------------------------------
people = {name: Atom(name) for name in
          ["ada", "grace", "edsger", "barbara", "donald", "tony", "leslie"]}
projects = {name: Atom(name) for name in ["compiler", "kernel", "proofs"]}

database = Database()
for boss, report in [
    ("ada", "grace"),
    ("ada", "edsger"),
    ("grace", "barbara"),
    ("grace", "donald"),
    ("edsger", "tony"),
]:
    database.add("reports_to", people[report], people[boss])
for person, project in [
    ("barbara", "compiler"),
    ("donald", "compiler"),
    ("grace", "compiler"),
    ("tony", "kernel"),
    ("leslie", "proofs"),
    ("donald", "proofs"),
]:
    database.add("works_on", people[person], projects[project])
# A blame cycle for the non-stratified query.
for accuser, accused in [("donald", "tony"), ("tony", "donald"), ("tony", "leslie")]:
    database.add("blames", people[accuser], people[accused])

program = parse_program(
    """
    % transitive management
    chain_of_command(E, M) :- reports_to(E, M).
    chain_of_command(E, M) :- reports_to(E, B), chain_of_command(B, M).

    % someone with no manager of theirs on the same project
    managed_on(E, P) :- works_on(E, P), chain_of_command(E, M), works_on(M, P).
    unsupervised(E, P) :- works_on(E, P), not managed_on(E, P).

    % escalation: a blame sticks unless the accused successfully
    % escalates a counter-blame — a win-move game in office clothing
    escalates(X) :- blames(X, Y), not escalates(Y).
    """,
    name="company",
)

result = run(program, database, semantics="valid", registry=registry)

print("== deductive answers (valid semantics)")
print("chain_of_command:")
for employee, manager in sorted(result.true_rows("chain_of_command"),
                                key=lambda r: (r[0].name, r[1].name)):
    print(f"   {employee.name:8} -> {manager.name}")
print("unsupervised:")
for employee, project in sorted(result.true_rows("unsupervised"),
                                key=lambda r: (r[0].name, r[1].name)):
    print(f"   {employee.name:8} on {project.name}")
print("escalates (true):     ",
      sorted(r[0].name for r in result.true_rows("escalates")))
print("escalates (undefined):",
      sorted(r[0].name for r in result.undefined_rows("escalates")))

# ---------------------------------------------------------------------------
# The same database and queries in the algebra (Proposition 6.1).
# ---------------------------------------------------------------------------
translation = datalog_to_algebra(program)
environment = database_to_environment(database)
for name in translation.program.database_relations:
    environment.setdefault(name, Relation([], name=name))
algebraic = valid_evaluate(translation.program, environment, registry=registry)

print("\n== the same, through algebra= simulation equations")
for predicate in ("chain_of_command", "unsupervised", "escalates"):
    direct_true = {r for r in result.true_rows(predicate)}
    direct_undef = {r for r in result.undefined_rows(predicate)}
    via_true = {
        tuple(v.items) if hasattr(v, "items") else (v,)
        for v in algebraic.true[predicate]
    }
    via_undef = {
        tuple(v.items) if hasattr(v, "items") else (v,)
        for v in algebraic.undefined[predicate]
    }
    match = direct_true == via_true and direct_undef == via_undef
    print(f"   {predicate:18} true {len(via_true):2}  undefined {len(via_undef):2}  "
          f"{'agrees' if match else 'MISMATCH'}")
    assert match

print("\nThe blame cycle donald ↔ tony is a draw — undefined in the valid")
print("model of both the deductive program and its algebra= translation;")
print("tony's blame of leslie sticks (leslie blames nobody back).")
