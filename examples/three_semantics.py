#!/usr/bin/env python3
"""One program, four semantics (Sections 5 and 7).

The WIN game on a graph with a drawn cycle, an escape, and a decided
tail, evaluated under every semantics in the reproduction:

* inflationary — negation as "not derived so far" (Proposition 5.1's
  target); over-eager on cycles;
* well-founded — the alternating fixpoint;
* valid — the paper's Section 2.2 computation (agrees with WFS here);
* stable — the Section 7 adjustment: each stable model resolves the
  drawn cycle one way or the other; cautious/brave answers bracket the
  valid model.

Run:  python examples/three_semantics.py
"""

from repro import Dialect, parse_algebra_program, run, translation_registry
from repro.core import (
    algebra_answers_stable,
    environment_to_database,
    stable_set_models,
    translate_program,
    valid_evaluate,
)
from repro.relations import Atom, Relation, tup

registry = translation_registry()

# The game graph:
#   cycle:  a ↔ b          (a drawn sub-game on its own)
#   escape: b → c → d      (c wins: d is a sink)
a, b, c, d = (Atom(x) for x in "abcd")
edges = [(a, b), (b, a), (b, c), (c, d)]
move = Relation([tup(s, t) for s, t in edges], name="MOVE")
print("MOVE:", ", ".join(f"{s.name}→{t.name}" for s, t in edges))

program = parse_algebra_program(
    "relations MOVE;\nWIN = pi1(MOVE - (pi1(MOVE) * WIN));",
    dialect=Dialect.ALGEBRA_EQ,
)

# ---------------------------------------------------------------------------
# Valid (native three-valued evaluation).
# ---------------------------------------------------------------------------
valid = valid_evaluate(program, {"MOVE": move}, registry=registry)
print("\nvalid:")
print("  true      :", sorted(v.name for v in valid.true["WIN"]))
print("  undefined :", sorted(v.name for v in valid.undefined["WIN"]))

# ---------------------------------------------------------------------------
# Well-founded and inflationary, through the translation.
# ---------------------------------------------------------------------------
translation = translate_program(program)
database = environment_to_database({"MOVE": move}, {})
predicate = translation.predicate_of["WIN"]
for semantics in ("wellfounded", "inflationary"):
    outcome = run(translation.program, database, semantics=semantics, registry=registry)
    true_names = sorted(r[0].name for r in outcome.true_rows(predicate))
    undef_names = sorted(r[0].name for r in outcome.undefined_rows(predicate))
    print(f"\n{semantics}:")
    print("  true      :", true_names)
    if undef_names:
        print("  undefined :", undef_names)

# ---------------------------------------------------------------------------
# Stable models (the Section 7 adjustment).
# ---------------------------------------------------------------------------
models = stable_set_models(program, {"MOVE": move}, registry=registry)
answers = algebra_answers_stable(program, {"MOVE": move}, registry=registry)
print(f"\nstable ({len(models)} models):")
for index, model in enumerate(models, 1):
    print(f"  model {index}: WIN =", sorted(v.name for v in model.members["WIN"]))
print("  cautious  :", sorted(v.name for v in answers.cautious["WIN"]))
print("  brave     :", sorted(v.name for v in answers.brave["WIN"]))

print(
    "\nReading: c wins outright (d is a sink), so b's escape to c is no"
    "\nhelp, and the a ↔ b cycle is a genuine draw.  The valid and"
    "\nwell-founded models leave a and b undefined; each stable model"
    "\nresolves the cycle one way (cautious ∩ = the valid truths, brave ∪ ="
    "\neverything some resolution makes true); the inflationary reading"
    "\nover-derives and calls everyone a winner except the sink."
)
