#!/usr/bin/env python3
"""Section 2: algebraic specifications, rewriting, and valid models.

Four scenes:

1. the SET(nat) specification of Section 2.1, with MEM evaluated by term
   rewriting;
2. the same specification read as a deductive program over ``eq/2``
   (Section 2.2) — the valid interpretation on a finite window;
3. Example 2: the three-constant specification with NO initial valid
   model, decided by the Proposition 2.3(2) procedure;
4. a repaired variant where negation *does* determine a unique initial
   valid model.

Run:  python examples/spec_playground.py
"""

from repro.specs import (
    CongruenceClosure,
    Operation,
    RewriteSystem,
    Specification,
    analyze_constant_spec,
    equation,
    sapp,
    valid_interpretation,
)
from repro.specs.builtins import (
    FALSE,
    TRUE,
    example2_spec,
    mem,
    nat_term,
    set_of_nat_spec,
    set_term,
)
from repro.specs.equations import NeqPremise

# ---------------------------------------------------------------------------
# Scene 1: SET(nat) and rewriting.
# ---------------------------------------------------------------------------
spec = set_of_nat_spec()
print("== the SET(nat) specification (Section 2.1)")
print(spec.pretty())

rewriter = RewriteSystem(spec.equations)
two, three, five = nat_term(2), nat_term(3), nat_term(5)
collection = set_term(two, three)
print("\nrewriting MEM queries:")
for query in (mem(two, collection), mem(five, collection)):
    print(f"   {query!r}  ~~>  {rewriter.normalize(query)!r}")

# ---------------------------------------------------------------------------
# Scene 2: the deductive version of a tiny spec (Section 2.2).
# ---------------------------------------------------------------------------
print("\n== a tiny spec as a deductive program over eq/2")
tiny = Specification.build(
    "tiny",
    ["s"],
    [Operation(n, (), "s") for n in "abcd"],
    [
        equation(sapp("a"), sapp("b")),
        # c = d provided a ≠ d — negation via the valid semantics.
        equation(sapp("c"), sapp("d"), NeqPremise(sapp("a"), sapp("d"))),
    ],
)
interp = valid_interpretation(tiny)
for left, right in [("a", "b"), ("c", "d"), ("a", "c")]:
    print(f"   {left} = {right}:  {interp.truth_equal(sapp(left), sapp(right)).name}")

# ---------------------------------------------------------------------------
# Scene 3: Example 2 — no initial valid model.
# ---------------------------------------------------------------------------
print("\n== Example 2: a ≠ b → a = c;  a ≠ c → a = b")
analysis = analyze_constant_spec(example2_spec())
print(f"   models: {len(analysis.model_partitions)}, all valid")
for partition in analysis.valid_partitions:
    blocks = " | ".join("".join(sorted(block)) for block in sorted(partition, key=min))
    print(f"     valid algebra: {blocks}")
print(f"   initial valid model exists: {analysis.has_initial_valid_model()}")
print("   (the two 2-block algebras are incomparable — the paper's point)")

# ---------------------------------------------------------------------------
# Scene 4: breaking the symmetry restores initiality.
# ---------------------------------------------------------------------------
print("\n== the repaired variant: only a ≠ b → a = c")
repaired = Specification.build(
    "repaired",
    ["s"],
    [Operation(n, (), "s") for n in "abc"],
    [equation(sapp("a"), sapp("c"), NeqPremise(sapp("a"), sapp("b")))],
)
analysis2 = analyze_constant_spec(repaired)
print(f"   certainly equal: {sorted(analysis2.certainly_equal)}")
print(f"   initial valid model: "
      f"{' | '.join(''.join(sorted(b)) for b in sorted(analysis2.initial, key=min))}")

# ---------------------------------------------------------------------------
# Bonus: congruence closure = the invariance relation of Section 2.1.
# ---------------------------------------------------------------------------
print("\n== congruence closure on ground equations")
closure = CongruenceClosure.from_ground_equations(
    [equation(sapp("f", sapp("a")), sapp("b")), equation(sapp("a"), sapp("c"))],
    extra_terms=[sapp("f", sapp("c"))],
)
print("   from f(a) = b and a = c, infer f(c) = b:",
      closure.are_equal(sapp("f", sapp("c")), sapp("b")))
